"""Machine and engine parameter descriptions for the accelerator models.

Calibration is anchored on the abstract's self-consistent claims:

* single-thread zlib -6 on a POWER9 core runs at ~20 MB/s, and one NX
  accelerator gives a **388x** speedup → NX compress ≈ 7.8 GB/s;
* the whole POWER9 chip of cores is **13x** slower than one NX →
  aggregate software ≈ 0.6 GB/s over 24 SMT4 cores;
* the z15 chip **doubles** the POWER9 rate → ≈ 15.6 GB/s per chip;
* a maximally configured z15 (5 CPC drawers x 4 CP chips = 20 chips)
  reaches **280 GB/s** → ≈ 14 GB/s sustained per chip after DHT and
  framing overheads.

Everything else (pipeline widths, overheads) is set to the publicly
documented shape of the NX-GZIP / Integrated-Accelerator-for-zEDC designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class EngineParams:
    """One compression/decompression engine pair inside the nest."""

    name: str
    clock_ghz: float
    scan_bytes_per_cycle: int      # compressor input scan width
    decomp_bytes_per_cycle: int    # decompressor output width
    hash_banks: int                # banked hash table: parallel lookups
    hash_ways: int                 # candidate positions kept per set
    hash_sets_log2: int            # sets per bank (log2)
    hash_ports: int                # lookup/insert ports per bank per cycle
    compare_window: int            # bytes compared per candidate per probe
    window_bytes: int = 32768
    pipeline_fill_cycles: int = 64
    dht_base_cycles: int = 1500          # DHT generator: fixed cost
    dht_cycles_per_symbol: int = 8       # DHT generator: per used symbol
    huffman_encode_bits_per_cycle: int = 64
    decomp_dht_setup_cycles: int = 96    # decode-table build per dyn block

    @property
    def scan_rate_gbps(self) -> float:
        """Peak scan rate in GB/s (upper bound on compression rate)."""
        return self.scan_bytes_per_cycle * self.clock_ghz

    @property
    def decomp_rate_gbps(self) -> float:
        """Peak decompressor output rate in GB/s."""
        return self.decomp_bytes_per_cycle * self.clock_ghz


@dataclass(frozen=True)
class CoreParams:
    """General-purpose core complex used for the software baseline."""

    cores: int
    clock_ghz: float
    smt: int
    smt_scaling: float  # aggregate speedup factor from filling SMT threads


@dataclass(frozen=True)
class MachineParams:
    """A chip (accelerator + cores) plus its invocation interface."""

    name: str
    engine: EngineParams
    cores: CoreParams
    accelerators_per_chip: int
    chips: int
    synchronous: bool              # z15 DFLTCC vs POWER9 async paste
    submit_overhead_us: float      # user thread: build CRB + paste (or
                                   # instruction issue for DFLTCC)
    dispatch_overhead_us: float    # VAS routing + engine job start
    completion_overhead_us: float  # CSB poll/interrupt + wakeup
    dma_read_gbps: float           # nest fabric read bandwidth per engine
    dma_write_gbps: float
    chip_area_mm2: float
    accelerator_area_mm2: float
    accelerator_power_w: float     # active power at full rate
    core_power_w: float            # one core, busy

    @property
    def area_fraction(self) -> float:
        return self.accelerator_area_mm2 / self.chip_area_mm2

    def validate(self) -> None:
        if self.accelerators_per_chip < 1 or self.chips < 1:
            raise ConfigError("machine must have at least one accelerator")
        if self.area_fraction > 0.05:
            raise ConfigError("accelerator area fraction implausibly high")


_P9_ENGINE = EngineParams(
    name="nx-gzip-p9",
    clock_ghz=2.0,
    scan_bytes_per_cycle=4,
    decomp_bytes_per_cycle=8,
    hash_banks=64,
    hash_ways=8,
    hash_sets_log2=11,
    hash_ports=2,
    compare_window=16,
)

_Z15_ENGINE = EngineParams(
    name="zedc-z15",
    clock_ghz=2.0,
    scan_bytes_per_cycle=8,
    decomp_bytes_per_cycle=16,
    hash_banks=128,
    hash_ways=8,
    hash_sets_log2=10,
    hash_ports=2,
    compare_window=32,
    dht_base_cycles=600,          # z15 doubled the DHT generator as well
    dht_cycles_per_symbol=3,
    huffman_encode_bits_per_cycle=128,
)

POWER9 = MachineParams(
    name="POWER9",
    engine=_P9_ENGINE,
    cores=CoreParams(cores=24, clock_ghz=3.8, smt=4, smt_scaling=1.24),
    accelerators_per_chip=1,
    chips=1,
    synchronous=False,
    submit_overhead_us=1.2,
    dispatch_overhead_us=0.8,
    completion_overhead_us=1.5,
    dma_read_gbps=50.0,
    dma_write_gbps=50.0,
    chip_area_mm2=728.0,
    accelerator_area_mm2=3.4,     # < 0.5 % of the chip, per the abstract
    accelerator_power_w=1.8,
    core_power_w=9.0,
)

Z15 = MachineParams(
    name="z15",
    engine=_Z15_ENGINE,
    cores=CoreParams(cores=12, clock_ghz=5.2, smt=2, smt_scaling=1.15),
    accelerators_per_chip=1,
    chips=1,
    synchronous=True,
    submit_overhead_us=0.15,      # DFLTCC: instruction issue, no paste
    dispatch_overhead_us=0.25,
    completion_overhead_us=0.1,
    dma_read_gbps=80.0,
    dma_write_gbps=80.0,
    chip_area_mm2=696.0,
    accelerator_area_mm2=3.0,
    accelerator_power_w=2.4,
    core_power_w=12.0,
)


def z15_max_config() -> "Topology":
    """The maximally configured z15: 5 CPC drawers x 4 CP chips."""
    return Topology(machine=Z15, chips_per_drawer=4, drawers=5)


@dataclass(frozen=True)
class Topology:
    """A multi-chip system built from one machine type."""

    machine: MachineParams
    chips_per_drawer: int = 1
    drawers: int = 1
    cross_chip_penalty_us: float = 0.5

    @property
    def total_chips(self) -> int:
        return self.chips_per_drawer * self.drawers

    @property
    def total_accelerators(self) -> int:
        return self.total_chips * self.machine.accelerators_per_chip

    @property
    def total_cores(self) -> int:
        return self.total_chips * self.machine.cores.cores


MACHINES: dict[str, MachineParams] = {"POWER9": POWER9, "z15": Z15}


def get_machine(name: str) -> MachineParams:
    """Look up a machine description by name (case-insensitive)."""
    for key, machine in MACHINES.items():
        if key.lower() == name.lower():
            return machine
    raise ConfigError(f"unknown machine {name!r}; have {sorted(MACHINES)}")
