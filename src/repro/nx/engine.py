"""The accelerator job engine: CRB in, CSB out.

``NxEngine.execute`` performs one complete coprocessor job against a
modelled address space: walk the source DDE through the MMU, run the
compression or decompression pipe, scatter the output through the target
DDE, and produce a CSB.  Translation faults abort the job with
``CC=TRANSLATION`` and the faulting address, exactly the software-visible
protocol the driver's touch-and-resubmit loop relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OutputOverflow, TranslationFault
from ..obs.trace import TRACE as _TRACE
from ..sysstack.crb import CcCode, Crb, Csb, Op
from ..sysstack.mmu import AddressSpace
from .compressor import NxCompressor, NxCompressResult
from .decompressor import NxDecompressor, NxDecompressResult
from .dht import DhtStrategy
from .params import EngineParams, MachineParams

_ABORT_OVERHEAD_CYCLES = 500  # suspend + CSB write after a fault


@dataclass
class JobOutcome:
    """Everything the engine reports about one executed CRB."""

    csb: Csb
    busy_seconds: float
    result: NxCompressResult | NxDecompressResult | None = None
    faulted_address: int | None = None


@dataclass
class EngineCounters:
    """Accumulated activity of one engine (for utilization reports)."""

    jobs: int = 0
    completed: int = 0
    faulted: int = 0
    overflowed: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    busy_seconds: float = 0.0


@dataclass
class NxEngine:
    """One compression/decompression engine pair plus its DMA ports."""

    machine: MachineParams
    counters: EngineCounters = field(default_factory=EngineCounters)

    def __post_init__(self) -> None:
        from ..e842.engine import Engine842

        self.params: EngineParams = self.machine.engine
        self._compressor = NxCompressor(self.params)
        self._decompressor = NxDecompressor(self.params)
        self._e842 = Engine842()

    def execute(self, crb: Crb, space: AddressSpace) -> JobOutcome:
        """Run one coprocessor job to completion, fault, or overflow."""
        if _TRACE.enabled:
            with _TRACE.span("engine.run", op=crb.function.op.name,
                             nbytes=crb.source.total_length) as span:
                outcome = self._execute(crb, space)
                span.set(cc=outcome.csb.cc.name,
                         busy_s=outcome.busy_seconds)
                if outcome.faulted_address is not None:
                    span.event("fault.translation",
                               address=outcome.faulted_address)
                return outcome
        return self._execute(crb, space)

    def _execute(self, crb: Crb, space: AddressSpace) -> JobOutcome:
        self.counters.jobs += 1
        reject = self._validate(crb)
        if reject is not None:
            busy = self._abort_seconds()
            self.counters.busy_seconds += busy
            csb = Csb(valid=True, cc=reject)
            if crb.csb_address:
                self._write_csb(crb, space, csb)
            return JobOutcome(csb=csb, busy_seconds=busy)
        try:
            source = self._gather_dde(crb.source, space)
            history = (self._gather_dde(crb.history_dde, space)
                       if crb.history_dde is not None else b"")
        except TranslationFault as fault:
            return self._fault_outcome(crb, space, fault)

        if crb.function.op is Op.COMPRESS:
            result = self._compressor.compress(
                source, strategy=DhtStrategy(crb.function.strategy),
                fmt=crb.function.fmt, history=history,
                final=crb.is_final)
            output = result.data
            compute_seconds = result.seconds
        elif crb.function.op is Op.DECOMPRESS:
            try:
                result = self._decompressor.decompress(
                    source, fmt=crb.function.fmt,
                    max_output=crb.target.total_length, history=history)
            except OutputOverflow:
                # Raw streams hit the target cap mid-decode; report the
                # architected overflow CC so the driver grows the buffer.
                return self._overflow_outcome(crb, space, 0, None)
            output = result.data
            compute_seconds = result.seconds
        elif crb.function.op is Op.COMPRESS_842:
            result = self._e842.compress(source)
            output = result.data
            compute_seconds = result.seconds
        else:  # Op.DECOMPRESS_842
            from ..e842.codec import E842Error, E842Overflow

            try:
                result = self._e842.decompress(
                    source, max_output=crb.target.total_length)
            except E842Overflow:
                return self._overflow_outcome(crb, space, 0, None)
            except E842Error:
                return self._reject(crb, space, CcCode.DATA_LENGTH)
            output = result.data
            compute_seconds = result.seconds

        if len(output) > crb.target.total_length:
            return self._overflow_outcome(crb, space, len(source), result)

        try:
            self._scatter(crb, space, output)
        except TranslationFault as fault:
            return self._fault_outcome(crb, space, fault)

        busy = self._busy_seconds(len(source), len(output), compute_seconds)
        csb = Csb(valid=True, cc=CcCode.SUCCESS,
                  processed_bytes=len(source), target_written=len(output))
        self._write_csb(crb, space, csb)
        self.counters.completed += 1
        self.counters.bytes_in += len(source)
        self.counters.bytes_out += len(output)
        self.counters.busy_seconds += busy
        return JobOutcome(csb=csb, busy_seconds=busy, result=result)

    def _validate(self, crb: Crb) -> CcCode | None:
        """Front-end CRB checks the hardware performs before starting."""
        if crb.csb_address == 0:
            return CcCode.INVALID_CRB
        if crb.target.total_length == 0:
            return CcCode.INVALID_CRB
        if (crb.function.op in (Op.DECOMPRESS, Op.DECOMPRESS_842)
                and crb.source.total_length == 0):
            return CcCode.DATA_LENGTH
        return None

    def _reject(self, crb: Crb, space: AddressSpace,
                cc: CcCode) -> JobOutcome:
        busy = self._abort_seconds()
        self.counters.busy_seconds += busy
        csb = Csb(valid=True, cc=cc)
        if crb.csb_address:
            self._write_csb(crb, space, csb)
        return JobOutcome(csb=csb, busy_seconds=busy)

    # -- data movement ----------------------------------------------------

    def _gather_dde(self, dde, space: AddressSpace) -> bytes:
        chunks = []
        for address, length in dde.segments():
            chunks.append(space.dma_read(address, length))
        return b"".join(chunks)

    def _scatter(self, crb: Crb, space: AddressSpace, output: bytes) -> None:
        pos = 0
        for address, length in crb.target.segments():
            if pos >= len(output):
                break
            chunk = output[pos:pos + length]
            space.dma_write(address, chunk)
            pos += len(chunk)

    def _write_csb(self, crb: Crb, space: AddressSpace, csb: Csb) -> None:
        space.write(crb.csb_address, csb.pack())

    # -- timing -------------------------------------------------------------

    def _busy_seconds(self, in_bytes: int, out_bytes: int,
                      compute_seconds: float) -> float:
        """Engine occupancy: compute overlapped with DMA in/out."""
        dma_in = in_bytes / (self.machine.dma_read_gbps * 1e9)
        dma_out = out_bytes / (self.machine.dma_write_gbps * 1e9)
        return max(compute_seconds, dma_in, dma_out)

    def _abort_seconds(self) -> float:
        cycles = self.params.pipeline_fill_cycles + _ABORT_OVERHEAD_CYCLES
        return cycles / (self.params.clock_ghz * 1e9)

    # -- abnormal completions -----------------------------------------------

    def _fault_outcome(self, crb: Crb, space: AddressSpace,
                       fault: TranslationFault) -> JobOutcome:
        self.counters.faulted += 1
        busy = self._abort_seconds()
        self.counters.busy_seconds += busy
        csb = Csb(valid=True, cc=CcCode.TRANSLATION,
                  fault_address=fault.address)
        self._write_csb(crb, space, csb)
        return JobOutcome(csb=csb, busy_seconds=busy,
                          faulted_address=fault.address)

    def _overflow_outcome(self, crb: Crb, space: AddressSpace,
                          processed: int, result) -> JobOutcome:
        self.counters.overflowed += 1
        busy = self._abort_seconds()
        self.counters.busy_seconds += busy
        csb = Csb(valid=True, cc=CcCode.TARGET_SPACE,
                  processed_bytes=processed)
        self._write_csb(crb, space, csb)
        return JobOutcome(csb=csb, busy_seconds=busy, result=result)
