"""Dynamic Huffman Table (DHT) generation model.

The NX compressor supports three Huffman strategies, selected per request
by the CRB function code:

* **FIXED** — RFC 1951 fixed codes; zero table-generation latency, worst
  ratio.
* **DYNAMIC** — the hardware DHT generator sorts the LZ symbol statistics
  and builds length-limited canonical codes; best ratio, but the LZ pass
  and the encode pass are decoupled by a table-generation bubble.
* **CANNED** — a pre-computed DHT appropriate for the data class is
  fetched from a small on-chip cache keyed by a quick sample of the
  source; near-DYNAMIC ratio at near-FIXED latency.

The cycle model charges ``dht_base_cycles + dht_cycles_per_symbol x
(used litlen + dist symbols)`` for DYNAMIC generation, reflecting the
sorting-network implementation the product documentation describes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache

from ..deflate.constants import (
    MAX_CODE_LENGTH,
    NUM_DIST_SYMBOLS,
    NUM_LITLEN_SYMBOLS,
    fixed_dist_lengths,
    fixed_litlen_lengths,
)
from ..deflate.huffman import limited_code_lengths
from ..errors import ConfigError
from .params import EngineParams


class DhtStrategy(enum.Enum):
    """Huffman table policy for one compression request."""

    FIXED = "fixed"
    DYNAMIC = "dynamic"
    CANNED = "canned"
    AUTO = "auto"


@dataclass(frozen=True)
class DhtResult:
    """A chosen pair of code-length vectors plus its generation cost."""

    litlen_lengths: tuple[int, ...]
    dist_lengths: tuple[int, ...]
    generation_cycles: int
    source: str  # "fixed", "dynamic" or canned template name


def generate_dynamic(lit_freq: list[int], dist_freq: list[int],
                     params: EngineParams) -> DhtResult:
    """Model the hardware DHT generator on real block statistics."""
    from ..deflate.compress import build_dynamic_code

    lit_lengths, dist_lengths = build_dynamic_code(lit_freq, dist_freq)
    cycles = dynamic_generation_cycles(lit_freq, dist_freq, params)
    return DhtResult(tuple(lit_lengths), tuple(dist_lengths), cycles,
                     source="dynamic")


def dynamic_generation_cycles(lit_freq: list[int], dist_freq: list[int],
                              params: EngineParams) -> int:
    """Cycle cost of one hardware DHT generation pass."""
    used = (sum(1 for f in lit_freq if f)
            + sum(1 for f in dist_freq if f))
    return params.dht_base_cycles + params.dht_cycles_per_symbol * used


def fixed_dht() -> DhtResult:
    """The RFC 1951 fixed code as a zero-cost DHT."""
    return DhtResult(tuple(fixed_litlen_lengths()),
                     tuple(fixed_dist_lengths()), 0, source="fixed")


# -- canned DHT library ------------------------------------------------
#
# Each template is a synthetic frequency profile for a broad data class.
# Codes built from it cover *every* symbol (a floor frequency of 1), so a
# canned table can encode any input, merely sub-optimally.

def _text_profile() -> tuple[list[int], list[int]]:
    lit = [1] * NUM_LITLEN_SYMBOLS
    common = b"etaoinshrdlucmfwypvbgkjqxz ETAOINSHRDLU.,;:'\"!?-\n\t0123456789"
    for rank, byte in enumerate(common):
        lit[byte] += 4000 // (rank + 4)
    for sym in range(257, 286):  # moderate lengths, biased short
        lit[sym] += max(1, 500 - 20 * (sym - 257))
    dist = [1] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += max(1, 400 - 14 * abs(sym - 16))
    return lit, dist


def _binary_profile() -> tuple[list[int], list[int]]:
    """Object code: zero runs + opcode clusters over a flat-ish base.

    The base floor is high because instruction immediates/addresses are
    near-uniform; only the genuinely common bytes get shorter codes.
    """
    lit = [48] * NUM_LITLEN_SYMBOLS
    lit[0] += 1200  # zero bytes dominate binaries
    lit[255] += 150
    for byte in range(1, 32):
        lit[byte] += 60
    for sym in range(257, 286):
        lit[sym] = 40
    dist = [4] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += 2 + sym  # binaries favour far distances
    return lit, dist


def _structured_profile() -> tuple[list[int], list[int]]:
    lit = [2] * NUM_LITLEN_SYMBOLS
    for byte in b'{}[]",:0123456789abcdefghijklmnopqrstuvwxyz_ ':
        lit[byte] += 600
    for sym in range(257, 286):  # long matches: repeated schemas
        lit[sym] += 80 + 15 * (sym - 257)
    dist = [1] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += 30 + 12 * min(sym, 20)
    return lit, dist


def _flat_profile() -> tuple[list[int], list[int]]:
    """Near-uniform code: the conservative template for high-entropy data.

    Worst-case expansion on incompressible input stays tiny (~an extra
    fraction of a bit per literal), which is why a production canned
    library always includes a flat member.
    """
    lit = [64] * NUM_LITLEN_SYMBOLS
    lit[256] = 8  # EOB is rare
    for sym in range(257, 286):
        lit[sym] = 8
    dist = [8] * NUM_DIST_SYMBOLS
    return lit, dist


def _legalize(profile: tuple[list[int], list[int]]) -> tuple[
        list[int], list[int]]:
    """Zero the reserved litlen symbols 286/287 (illegal in headers)."""
    lit, dist = profile
    lit[286] = 0
    lit[287] = 0
    return lit, dist


_CANNED_PROFILES = {
    "text": _text_profile,
    "binary": _binary_profile,
    "structured": _structured_profile,
    "flat": _flat_profile,
}

CANNED_LOOKUP_CYCLES = 24  # cache index + table load


@lru_cache(maxsize=None)
def _builtin_canned(name: str) -> DhtResult:
    """Build (once) one built-in canned DHT by template name."""
    lit_freq, dist_freq = _legalize(_CANNED_PROFILES[name]())
    lit_lengths = limited_code_lengths(lit_freq, MAX_CODE_LENGTH)
    dist_lengths = limited_code_lengths(dist_freq, MAX_CODE_LENGTH)
    return DhtResult(tuple(lit_lengths), tuple(dist_lengths),
                     CANNED_LOOKUP_CYCLES, source=name)


def canned_dht(name: str) -> DhtResult:
    """Fetch one canned DHT: tenant-trained tables first, then built-ins."""
    trained = _TRAINED.get(name)
    if trained is not None:
        return trained.dht
    if name not in _CANNED_PROFILES:
        raise ConfigError(
            f"unknown canned DHT {name!r}; have "
            f"{canned_names(include_trained=True)}")
    return _builtin_canned(name)


def canned_names(include_trained: bool = False) -> list[str]:
    names = sorted(_CANNED_PROFILES)
    if include_trained:
        names += trained_names()
    return names


def _byte_class_vector(sample: bytes) -> list[float]:
    """Coarse 4-bin literal distribution used to pick a canned table."""
    bins = [0, 0, 0, 0]  # control, digits/punct, letters, high
    for byte in sample:
        if byte < 0x20:
            bins[0] += 1
        elif byte < 0x41:
            bins[1] += 1
        elif byte < 0x7F:
            bins[2] += 1
        else:
            bins[3] += 1
    total = max(1, len(sample))
    return [b / total for b in bins]


_CLASS_CENTROIDS = {
    "text": [0.03, 0.17, 0.78, 0.02],
    "binary": [0.45, 0.12, 0.18, 0.25],   # zero/opcode heavy
    "structured": [0.02, 0.48, 0.48, 0.02],
    "flat": [0.125, 0.129, 0.242, 0.504],  # uniform byte distribution
}


# -- traffic signatures + tenant-trained canned tables -----------------
#
# The built-in library classifies on a coarse 4-bin vector; trained
# tables (one per traffic cluster, shipped by the dictionary service)
# need finer discrimination, so they match on a 20-dimension signature:
# a 16-bin byte histogram plus zero fraction, printable fraction,
# distinct-byte fraction, and an LZ match-density probe.

#: Squared-distance bound for a trained centroid to claim a sample;
#: beyond it classification falls back to the built-in templates, so
#: unseen traffic never gets clamped onto another tenant's profile.
TRAINED_MATCH_THRESHOLD = 0.02

#: Bytes the GDHT facility scans per voting window (see
#: :func:`select_canned_windowed`).
GDHT_SCAN_WINDOW = 512


def sample_signature(sample: bytes, probe: int = 4096) -> tuple[float, ...]:
    """A 20-dim traffic signature for clustering and trained-table pick.

    All components are fractions in [0, 1], so Euclidean distance in
    this space is scale-free.  The match-density probe samples at most
    ~1024 positions, keeping the signature O(1) on large payloads.
    """
    s = sample[:probe]
    total = max(1, len(s))
    hist16 = [0] * 16
    for byte in s:
        hist16[byte >> 4] += 1
    vec = [h / total for h in hist16]
    zero = s.count(0) / total
    printable = sum(1 for b in s if 0x20 <= b < 0x7F) / total
    distinct = len(set(s)) / 256.0
    n = max(0, len(s) - 3)
    repeats = 0
    probes = 0
    if n:
        step = max(1, n // 1024)
        seen: set[bytes] = set()
        for i in range(0, n, step):
            sh = bytes(s[i:i + 4])
            probes += 1
            if sh in seen:
                repeats += 1
            else:
                seen.add(sh)
    density = repeats / probes if probes else 0.0
    return tuple(vec + [zero, printable, distinct, density])


def signature_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    """Squared Euclidean distance between two signatures."""
    return sum((x - y) ** 2 for x, y in zip(a, b))


@dataclass(frozen=True)
class TrainedCanned:
    """One tenant-trained canned table registered with the engine."""

    dht: DhtResult
    centroid: tuple[float, ...]


_TRAINED: dict[str, TrainedCanned] = {}


def register_trained_dht(name: str, litlen_lengths, dist_lengths,
                         centroid, replace: bool = False) -> None:
    """Publish a trained canned DHT under ``name``.

    The table must cover every *literal* (0..255) plus end-of-block —
    that guarantees any input can be encoded, because the engine demotes
    a match whose length/distance code is missing back to literals (see
    :meth:`repro.nx.compressor.NxCompressor`).  Length codes 257..285
    and distance codes may therefore be zero: a trained table only
    carries the codes its cluster's traffic actually used, which keeps
    the per-block table header small.  Reserved litlen symbols 286/287
    must stay at length zero.
    """
    lit = tuple(int(x) for x in litlen_lengths)
    dist = tuple(int(x) for x in dist_lengths)
    if len(lit) != NUM_LITLEN_SYMBOLS or len(dist) != NUM_DIST_SYMBOLS:
        raise ConfigError(
            f"trained DHT {name!r}: length vectors must cover "
            f"{NUM_LITLEN_SYMBOLS}/{NUM_DIST_SYMBOLS} symbols")
    if lit[286] or lit[287]:
        raise ConfigError(
            f"trained DHT {name!r}: reserved symbols 286/287 must be 0")
    if any(length == 0 for length in lit[:257]):
        raise ConfigError(
            f"trained DHT {name!r}: every literal and end-of-block needs "
            "a code (the literal fallback must encode any input)")
    if any(not 0 <= x <= MAX_CODE_LENGTH for x in lit + dist):
        raise ConfigError(
            f"trained DHT {name!r}: code lengths must be in "
            f"[0, {MAX_CODE_LENGTH}]")
    if name in _CANNED_PROFILES:
        raise ConfigError(
            f"trained DHT {name!r} shadows a built-in template")
    if not replace and name in _TRAINED:
        raise ConfigError(f"trained DHT {name!r} already registered")
    _TRAINED[name] = TrainedCanned(
        dht=DhtResult(lit, dist, CANNED_LOOKUP_CYCLES, source=name),
        centroid=tuple(float(x) for x in centroid))


def unregister_trained_dht(name: str) -> None:
    _TRAINED.pop(name, None)


def clear_trained_dhts() -> None:
    _TRAINED.clear()


def trained_names() -> list[str]:
    return sorted(_TRAINED)


def select_canned(sample: bytes) -> str:
    """Classify a source sample onto the nearest canned template.

    Tenant-trained tables win when one's centroid is within
    :data:`TRAINED_MATCH_THRESHOLD` of the sample's signature;
    otherwise the built-in 4-class library decides, so pushing trained
    dictionaries can only specialize classification, never break it.
    """
    if _TRAINED:
        sig = sample_signature(sample)
        best_name = None
        best_dist = math.inf
        for name in sorted(_TRAINED):
            dist = signature_distance(sig, _TRAINED[name].centroid)
            if dist < best_dist:
                best_dist = dist
                best_name = name
        if best_name is not None and best_dist <= TRAINED_MATCH_THRESHOLD:
            return best_name
    vec = _byte_class_vector(sample[:4096])
    best_name = "text"
    best_dist = math.inf
    for name, centroid in _CLASS_CENTROIDS.items():
        dist = sum((a - b) ** 2 for a, b in zip(vec, centroid))
        if dist < best_dist:
            best_dist = dist
            best_name = name
    return best_name


def select_canned_windowed(sample: bytes,
                           window: int = GDHT_SCAN_WINDOW) -> str:
    """The GDHT facility's canned pick: vote across full scan windows.

    Only *complete* windows are scanned — the caller guards against a
    sample shorter than one window (that case must degrade to a dynamic
    DHT rather than index past the sample).  Ties break toward the
    window seen first, keeping the pick deterministic.
    """
    if len(sample) < window:
        raise ConfigError(
            f"GDHT sample of {len(sample)} bytes is shorter than the "
            f"{window}-byte scan window; degrade to a dynamic DHT")
    votes: dict[str, int] = {}
    order: list[str] = []
    for off in range(0, len(sample) - window + 1, window):
        pick = select_canned(sample[off:off + window])
        if pick not in votes:
            votes[pick] = 0
            order.append(pick)
        votes[pick] += 1
    return max(order, key=lambda name: votes[name])
