"""Dynamic Huffman Table (DHT) generation model.

The NX compressor supports three Huffman strategies, selected per request
by the CRB function code:

* **FIXED** — RFC 1951 fixed codes; zero table-generation latency, worst
  ratio.
* **DYNAMIC** — the hardware DHT generator sorts the LZ symbol statistics
  and builds length-limited canonical codes; best ratio, but the LZ pass
  and the encode pass are decoupled by a table-generation bubble.
* **CANNED** — a pre-computed DHT appropriate for the data class is
  fetched from a small on-chip cache keyed by a quick sample of the
  source; near-DYNAMIC ratio at near-FIXED latency.

The cycle model charges ``dht_base_cycles + dht_cycles_per_symbol x
(used litlen + dist symbols)`` for DYNAMIC generation, reflecting the
sorting-network implementation the product documentation describes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import lru_cache

from ..deflate.constants import (
    MAX_CODE_LENGTH,
    NUM_DIST_SYMBOLS,
    NUM_LITLEN_SYMBOLS,
    fixed_dist_lengths,
    fixed_litlen_lengths,
)
from ..deflate.huffman import limited_code_lengths
from .params import EngineParams


class DhtStrategy(enum.Enum):
    """Huffman table policy for one compression request."""

    FIXED = "fixed"
    DYNAMIC = "dynamic"
    CANNED = "canned"
    AUTO = "auto"


@dataclass(frozen=True)
class DhtResult:
    """A chosen pair of code-length vectors plus its generation cost."""

    litlen_lengths: tuple[int, ...]
    dist_lengths: tuple[int, ...]
    generation_cycles: int
    source: str  # "fixed", "dynamic" or canned template name


def generate_dynamic(lit_freq: list[int], dist_freq: list[int],
                     params: EngineParams) -> DhtResult:
    """Model the hardware DHT generator on real block statistics."""
    from ..deflate.compress import build_dynamic_code

    lit_lengths, dist_lengths = build_dynamic_code(lit_freq, dist_freq)
    cycles = dynamic_generation_cycles(lit_freq, dist_freq, params)
    return DhtResult(tuple(lit_lengths), tuple(dist_lengths), cycles,
                     source="dynamic")


def dynamic_generation_cycles(lit_freq: list[int], dist_freq: list[int],
                              params: EngineParams) -> int:
    """Cycle cost of one hardware DHT generation pass."""
    used = (sum(1 for f in lit_freq if f)
            + sum(1 for f in dist_freq if f))
    return params.dht_base_cycles + params.dht_cycles_per_symbol * used


def fixed_dht() -> DhtResult:
    """The RFC 1951 fixed code as a zero-cost DHT."""
    return DhtResult(tuple(fixed_litlen_lengths()),
                     tuple(fixed_dist_lengths()), 0, source="fixed")


# -- canned DHT library ------------------------------------------------
#
# Each template is a synthetic frequency profile for a broad data class.
# Codes built from it cover *every* symbol (a floor frequency of 1), so a
# canned table can encode any input, merely sub-optimally.

def _text_profile() -> tuple[list[int], list[int]]:
    lit = [1] * NUM_LITLEN_SYMBOLS
    common = b"etaoinshrdlucmfwypvbgkjqxz ETAOINSHRDLU.,;:'\"!?-\n\t0123456789"
    for rank, byte in enumerate(common):
        lit[byte] += 4000 // (rank + 4)
    for sym in range(257, 286):  # moderate lengths, biased short
        lit[sym] += max(1, 500 - 20 * (sym - 257))
    dist = [1] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += max(1, 400 - 14 * abs(sym - 16))
    return lit, dist


def _binary_profile() -> tuple[list[int], list[int]]:
    """Object code: zero runs + opcode clusters over a flat-ish base.

    The base floor is high because instruction immediates/addresses are
    near-uniform; only the genuinely common bytes get shorter codes.
    """
    lit = [48] * NUM_LITLEN_SYMBOLS
    lit[0] += 1200  # zero bytes dominate binaries
    lit[255] += 150
    for byte in range(1, 32):
        lit[byte] += 60
    for sym in range(257, 286):
        lit[sym] = 40
    dist = [4] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += 2 + sym  # binaries favour far distances
    return lit, dist


def _structured_profile() -> tuple[list[int], list[int]]:
    lit = [2] * NUM_LITLEN_SYMBOLS
    for byte in b'{}[]",:0123456789abcdefghijklmnopqrstuvwxyz_ ':
        lit[byte] += 600
    for sym in range(257, 286):  # long matches: repeated schemas
        lit[sym] += 80 + 15 * (sym - 257)
    dist = [1] * NUM_DIST_SYMBOLS
    for sym in range(NUM_DIST_SYMBOLS):
        dist[sym] += 30 + 12 * min(sym, 20)
    return lit, dist


def _flat_profile() -> tuple[list[int], list[int]]:
    """Near-uniform code: the conservative template for high-entropy data.

    Worst-case expansion on incompressible input stays tiny (~an extra
    fraction of a bit per literal), which is why a production canned
    library always includes a flat member.
    """
    lit = [64] * NUM_LITLEN_SYMBOLS
    lit[256] = 8  # EOB is rare
    for sym in range(257, 286):
        lit[sym] = 8
    dist = [8] * NUM_DIST_SYMBOLS
    return lit, dist


def _legalize(profile: tuple[list[int], list[int]]) -> tuple[
        list[int], list[int]]:
    """Zero the reserved litlen symbols 286/287 (illegal in headers)."""
    lit, dist = profile
    lit[286] = 0
    lit[287] = 0
    return lit, dist


_CANNED_PROFILES = {
    "text": _text_profile,
    "binary": _binary_profile,
    "structured": _structured_profile,
    "flat": _flat_profile,
}

CANNED_LOOKUP_CYCLES = 24  # cache index + table load


@lru_cache(maxsize=None)
def canned_dht(name: str) -> DhtResult:
    """Fetch (and lazily build) one canned DHT by template name."""
    lit_freq, dist_freq = _legalize(_CANNED_PROFILES[name]())
    lit_lengths = limited_code_lengths(lit_freq, MAX_CODE_LENGTH)
    dist_lengths = limited_code_lengths(dist_freq, MAX_CODE_LENGTH)
    return DhtResult(tuple(lit_lengths), tuple(dist_lengths),
                     CANNED_LOOKUP_CYCLES, source=name)


def canned_names() -> list[str]:
    return sorted(_CANNED_PROFILES)


def _byte_class_vector(sample: bytes) -> list[float]:
    """Coarse 4-bin literal distribution used to pick a canned table."""
    bins = [0, 0, 0, 0]  # control, digits/punct, letters, high
    for byte in sample:
        if byte < 0x20:
            bins[0] += 1
        elif byte < 0x41:
            bins[1] += 1
        elif byte < 0x7F:
            bins[2] += 1
        else:
            bins[3] += 1
    total = max(1, len(sample))
    return [b / total for b in bins]


_CLASS_CENTROIDS = {
    "text": [0.03, 0.17, 0.78, 0.02],
    "binary": [0.45, 0.12, 0.18, 0.25],   # zero/opcode heavy
    "structured": [0.02, 0.48, 0.48, 0.02],
    "flat": [0.125, 0.129, 0.242, 0.504],  # uniform byte distribution
}


def select_canned(sample: bytes) -> str:
    """Classify a source sample onto the nearest canned template."""
    vec = _byte_class_vector(sample[:4096])
    best_name = "text"
    best_dist = math.inf
    for name, centroid in _CLASS_CENTROIDS.items():
        dist = sum((a - b) ** 2 for a, b in zip(vec, centroid))
        if dist < best_dist:
            best_dist = dist
            best_name = name
    return best_name
