"""High-level public API: the library a downstream user actually calls.

:class:`NxGzip` mirrors the shape of the production user-space library
(libnxz / zlib-compatible wrappers): open a session against a machine,
then ``compress``/``decompress`` buffers.  Each call runs the full
modelled stack — CRB build, VAS paste, engine execution, fault handling —
and returns both the bytes and the modelled timing, so applications and
experiments share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.registry import create_backend
from ..deflate import gzip_decompress, inflate, zlib_decompress
from ..errors import ConfigError
from ..nx.params import POWER9, MachineParams, get_machine
from ..obs.flight import FLIGHT as _FLIGHT
from ..obs.metrics import REGISTRY as _REGISTRY
from ..obs.metrics import record_job
from ..obs.trace import TRACE as _TRACE
from ..resilience.verify import (note_mismatch, software_compress,
                                 verify_payload)
from ..sysstack.driver import DriverResult


@dataclass
class SessionStats:
    """Running totals across one session's requests."""

    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0
    faults: int = 0
    fallbacks: int = 0


@dataclass
class CompressedBuffer:
    """The result of one API call."""

    data: bytes
    modelled_seconds: float
    driver: DriverResult

    @property
    def nbytes(self) -> int:
        return len(self.data)


class NxGzip:
    """A user session on the on-chip compression accelerator model.

    The session itself is thin: it owns a
    :class:`~repro.backend.base.CompressionBackend` handle resolved from
    the registry, accounts per-request stats, and returns
    :class:`CompressedBuffer` results.  All execution detail — CRB
    construction, paste/drain, DFLTCC re-issue, software fallback —
    lives behind the backend.

    Parameters
    ----------
    machine:
        A :class:`MachineParams` or machine name ("POWER9", "z15").
    fault_probability:
        Probability that any accelerator-side page translation faults
        (exercises the touch-and-resubmit path; ``nx`` backend only).
    backend:
        Registry name of the execution backend ("nx", "dfltcc",
        "software", "842").  Defaults to the NX driver stack, which
        models both machines' gzip engines.
    verify:
        Verify-after-compress: re-inflate every compressed payload and
        CRC-check it against the input before returning; on a mismatch
        the buffer is re-encoded in software (and the failure is
        published to metrics), so callers always receive bytes that
        round-trip.
    deadline_s:
        Default per-job deadline in modelled seconds; bounds the time a
        request may spend *waiting* (retries, fault fixups) before
        :class:`~repro.errors.DeadlineExceeded` is raised.
    """

    def __init__(self, machine: MachineParams | str = POWER9,
                 fault_probability: float = 0.0, seed: int = 0,
                 backend: str | None = None, verify: bool = False,
                 deadline_s: float | None = None,
                 **backend_kwargs) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine = machine
        self.backend_name = backend or "nx"
        if self.backend_name == "nx":
            backend_kwargs.setdefault("fault_probability", fault_probability)
            backend_kwargs.setdefault("seed", seed)
        elif fault_probability:
            raise ConfigError(
                "fault injection is a property of the 'nx' driver stack; "
                f"backend {self.backend_name!r} does not model it")
        self.backend = create_backend(self.backend_name, machine=machine,
                                      **backend_kwargs)
        self.verify = verify
        self.deadline_s = deadline_s
        self.stats = SessionStats()
        self.verify_failures = 0

    # -- backward-compatible views of the nx driver stack --------------------

    @property
    def driver(self):
        """The underlying driver (``nx`` backend only)."""
        return self.backend.driver

    @property
    def accelerator(self):
        return self.backend.accelerator

    @property
    def space(self):
        return self.backend.space

    # -- public operations ---------------------------------------------------

    def compress(self, data: bytes, strategy: str = "auto",
                 fmt: str = "gzip",
                 deadline_s: float | None = None,
                 verify: bool | None = None) -> CompressedBuffer:
        """Compress ``data``; ``fmt`` is raw | zlib | gzip.

        ``deadline_s`` / ``verify`` override the session defaults for
        this one call.
        """
        deadline_s = deadline_s if deadline_s is not None else self.deadline_s
        if _TRACE.enabled:
            with _TRACE.span("api.compress", backend=self.backend_name,
                             fmt=fmt, nbytes=len(data)) as span:
                result = self.backend.compress(data, strategy=strategy,
                                               fmt=fmt,
                                               deadline_s=deadline_s)
                span.set(out_bytes=len(result.output),
                         modelled_s=result.stats.elapsed_seconds)
        else:
            result = self.backend.compress(data, strategy=strategy, fmt=fmt,
                                           deadline_s=deadline_s)
        result = self._maybe_verify(data, fmt, result, verify)
        self._account(len(data), len(result.output), result, "compress")
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def decompress(self, payload: bytes,
                   fmt: str = "gzip",
                   deadline_s: float | None = None) -> CompressedBuffer:
        """Decompress ``payload`` produced in the same wire format."""
        deadline_s = deadline_s if deadline_s is not None else self.deadline_s
        if _TRACE.enabled:
            with _TRACE.span("api.decompress", backend=self.backend_name,
                             fmt=fmt, nbytes=len(payload)) as span:
                result = self.backend.decompress(payload, fmt=fmt,
                                                 deadline_s=deadline_s)
                span.set(out_bytes=len(result.output),
                         modelled_s=result.stats.elapsed_seconds)
        else:
            result = self.backend.decompress(payload, fmt=fmt,
                                             deadline_s=deadline_s)
        self._account(len(payload), len(result.output), result, "decompress")
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def _maybe_verify(self, data: bytes, fmt: str, result: DriverResult,
                      verify: bool | None) -> DriverResult:
        """Verify-after-compress; mismatches are re-encoded in software."""
        do_verify = self.verify if verify is None else verify
        if not do_verify or verify_payload(data, result.output, fmt):
            return result
        self.verify_failures += 1
        note_mismatch(self.backend_name, fmt, len(data))
        output, seconds = software_compress(data, fmt=fmt,
                                            machine=self.machine)
        stats = result.stats
        stats.fallback_to_software = True
        stats.elapsed_seconds += seconds
        return DriverResult(output=output, csb=None, stats=stats)

    def compress_842(self, data: bytes) -> CompressedBuffer:
        """Compress through the 842 pipes (memory-compression format)."""
        if _TRACE.enabled:
            with _TRACE.span("api.compress", backend=self.backend_name,
                             fmt="842", nbytes=len(data)) as span:
                result = self.backend.compress(data, fmt="842")
                span.set(out_bytes=len(result.output))
        else:
            result = self.backend.compress(data, fmt="842")
        result = self._maybe_verify(data, "842", result, None)
        self._account(len(data), len(result.output), result, "compress")
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def decompress_842(self, payload: bytes) -> CompressedBuffer:
        """Decompress an 842 stream produced by :meth:`compress_842`."""
        if _TRACE.enabled:
            with _TRACE.span("api.decompress", backend=self.backend_name,
                             fmt="842", nbytes=len(payload)) as span:
                result = self.backend.decompress(payload, fmt="842")
                span.set(out_bytes=len(result.output))
        else:
            result = self.backend.decompress(payload, fmt="842")
        self._account(len(payload), len(result.output), result, "decompress")
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def compress_chunk(self, chunk: bytes, strategy: str = "auto",
                       history: bytes = b"",
                       final: bool = True) -> DriverResult:
        """One continuation-unit compression, session-accounted.

        The streaming layer calls this per chunk so faults/fallbacks on
        streaming requests land in :attr:`stats` like every other path.
        """
        if _TRACE.enabled:
            with _TRACE.span("api.compress_chunk",
                             backend=self.backend_name,
                             nbytes=len(chunk), final=final) as span:
                result = self.backend.compress(chunk, strategy=strategy,
                                               fmt="raw", history=history,
                                               final=final)
                span.set(out_bytes=len(result.output))
        else:
            result = self.backend.compress(chunk, strategy=strategy,
                                           fmt="raw", history=history,
                                           final=final)
        self._account(len(chunk), len(result.output), result, "compress")
        return result

    def compress_stream(self, strategy: str = "auto",
                        fmt: str = "gzip") -> "NxCompressStream":
        """Open a chunk-at-a-time compression stream on this session."""
        from .stream import NxCompressStream

        return NxCompressStream(session=self, strategy=strategy, fmt=fmt)

    def decompress_stream(self) -> "NxDecompressStream":
        """Open a continuation-unit decompression stream."""
        from .stream import NxDecompressStream

        return NxDecompressStream(session=self)

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "NxGzip":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- helpers -----------------------------------------------------------

    def _account(self, nin: int, nout: int, result: DriverResult,
                 op: str = "compress") -> None:
        self.stats.requests += 1
        self.stats.bytes_in += nin
        self.stats.bytes_out += nout
        self.stats.modelled_seconds += result.stats.elapsed_seconds
        self.stats.faults += result.stats.translation_faults
        self.stats.fallbacks += int(result.stats.fallback_to_software)
        # One compact ring append per job: the always-on black box.
        _FLIGHT.record("api." + op, nbytes=nin, out=nout,
                       backend=self.backend_name)
        if _REGISTRY.enabled:
            # SessionStats stays the per-session view; the registry is
            # the cross-session aggregate fed from the same point.
            record_job("api", op=op, nbytes_in=nin, nbytes_out=nout,
                       seconds=result.stats.elapsed_seconds,
                       faults=result.stats.translation_faults,
                       fallback=result.stats.fallback_to_software,
                       backend=self.backend_name)


def software_decompress(payload: bytes, fmt: str = "gzip") -> bytes:
    """Reference software decode of any wire format (for verification)."""
    if fmt == "gzip":
        return gzip_decompress(payload)
    if fmt == "zlib":
        return zlib_decompress(payload)
    return inflate(payload)
