"""High-level public API: the library a downstream user actually calls.

:class:`NxGzip` mirrors the shape of the production user-space library
(libnxz / zlib-compatible wrappers): open a session against a machine,
then ``compress``/``decompress`` buffers.  Each call runs the full
modelled stack — CRB build, VAS paste, engine execution, fault handling —
and returns both the bytes and the modelled timing, so applications and
experiments share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deflate import gzip_decompress, inflate, zlib_decompress
from ..nx.accelerator import NxAccelerator
from ..nx.params import POWER9, MachineParams, get_machine
from ..sysstack.crb import Op
from ..sysstack.driver import DriverResult, NxDriver
from ..sysstack.mmu import AddressSpace, FaultInjector


@dataclass
class SessionStats:
    """Running totals across one session's requests."""

    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0
    faults: int = 0
    fallbacks: int = 0


@dataclass
class CompressedBuffer:
    """The result of one API call."""

    data: bytes
    modelled_seconds: float
    driver: DriverResult

    @property
    def nbytes(self) -> int:
        return len(self.data)


class NxGzip:
    """A user session on the on-chip compression accelerator model.

    Parameters
    ----------
    machine:
        A :class:`MachineParams` or machine name ("POWER9", "z15").
    fault_probability:
        Probability that any accelerator-side page translation faults
        (exercises the touch-and-resubmit path).
    """

    def __init__(self, machine: MachineParams | str = POWER9,
                 fault_probability: float = 0.0, seed: int = 0) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine = machine
        self.space = AddressSpace(
            fault_injector=FaultInjector(fault_probability, seed=seed))
        self.accelerator = NxAccelerator(machine)
        self.driver = NxDriver(self.accelerator, self.space)
        self.driver.open()
        self.stats = SessionStats()

    # -- public operations ---------------------------------------------------

    def compress(self, data: bytes, strategy: str = "auto",
                 fmt: str = "gzip") -> CompressedBuffer:
        """Compress ``data``; ``fmt`` is raw | zlib | gzip."""
        result = self.driver.run(Op.COMPRESS, data, strategy=strategy,
                                 fmt=fmt)
        self._account(len(data), len(result.output), result)
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def decompress(self, payload: bytes,
                   fmt: str = "gzip") -> CompressedBuffer:
        """Decompress ``payload`` produced in the same wire format."""
        result = self.driver.run(Op.DECOMPRESS, payload, fmt=fmt)
        self._account(len(payload), len(result.output), result)
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def compress_842(self, data: bytes) -> CompressedBuffer:
        """Compress through the 842 pipes (memory-compression format)."""
        result = self.driver.run(Op.COMPRESS_842, data)
        self._account(len(data), len(result.output), result)
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def decompress_842(self, payload: bytes) -> CompressedBuffer:
        """Decompress an 842 stream produced by :meth:`compress_842`."""
        result = self.driver.run(Op.DECOMPRESS_842, payload)
        self._account(len(payload), len(result.output), result)
        return CompressedBuffer(data=result.output,
                                modelled_seconds=result.stats.elapsed_seconds,
                                driver=result)

    def compress_stream(self, strategy: str = "auto",
                        fmt: str = "gzip") -> "NxCompressStream":
        """Open a chunk-at-a-time compression stream on this session."""
        from .stream import NxCompressStream

        return NxCompressStream(session=self, strategy=strategy, fmt=fmt)

    def decompress_stream(self) -> "NxDecompressStream":
        """Open a continuation-unit decompression stream."""
        from .stream import NxDecompressStream

        return NxDecompressStream(session=self)

    def close(self) -> None:
        self.driver.close()

    def __enter__(self) -> "NxGzip":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- helpers -----------------------------------------------------------

    def _account(self, nin: int, nout: int, result: DriverResult) -> None:
        self.stats.requests += 1
        self.stats.bytes_in += nin
        self.stats.bytes_out += nout
        self.stats.modelled_seconds += result.stats.elapsed_seconds
        self.stats.faults += result.stats.translation_faults
        self.stats.fallbacks += int(result.stats.fallback_to_software)


def software_decompress(payload: bytes, fmt: str = "gzip") -> bytes:
    """Reference software decode of any wire format (for verification)."""
    if fmt == "gzip":
        return gzip_decompress(payload)
    if fmt == "zlib":
        return zlib_decompress(payload)
    return inflate(payload)
