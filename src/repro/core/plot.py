"""ASCII figure rendering for the benchmark harness.

The paper's evaluation is tables *and figures*; the benches regenerate
the figures as ASCII charts appended to their result files, so the
shape (ramps, knees, crossings) is visible without a plotting stack.

Two renderers:

* :func:`line_chart` — one or more (x, y) series on shared axes, with
  optional log-scale x (buffer-size sweeps) — points marked per series;
* :func:`bar_chart` — labelled horizontal bars (ratio comparisons).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_MARKERS = "*o+x#@"


def _scale(value: float, lo: float, hi: float, cells: int,
           log: bool = False) -> int:
    if log:
        value, lo, hi = math.log10(max(value, 1e-12)), math.log10(
            max(lo, 1e-12)), math.log10(max(hi, 1e-12))
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, round(pos * (cells - 1))))


def line_chart(series: dict[str, Sequence[tuple[float, float]]],
               width: int = 64, height: int = 16,
               log_x: bool = False, title: str = "",
               y_label: str = "", x_label: str = "") -> str:
    """Render named (x, y) series onto one character grid."""
    points = [pt for pts in series.values() for pt in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width, log=log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}".rjust(10)
    bottom_label = f"{y_lo:.4g}".rjust(10)
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label
        elif row_idx == height - 1:
            prefix = bottom_label
        elif row_idx == height // 2 and y_label:
            prefix = y_label[:10].rjust(10)
        else:
            prefix = " " * 10
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    x_lo_text = f"{x_lo:.4g}"
    x_hi_text = f"{x_hi:.4g}"
    gap = width - len(x_lo_text) - len(x_hi_text)
    lines.append(" " * 12 + x_lo_text + " " * max(1, gap) + x_hi_text
                 + ("  (log x)" if log_x else ""))
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(values: dict[str, float], width: int = 50,
              title: str = "", unit: str = "") -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        cells = 0 if peak <= 0 else round(width * value / peak)
        bar = "#" * cells
        lines.append(f"{name.rjust(label_width)} |{bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)
