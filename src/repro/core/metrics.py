"""Reporting helpers shared by examples and benchmark harnesses.

Everything the benches print goes through these, so tables come out in a
single consistent format (and the format itself is testable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


def gbps(nbytes: int, seconds: float) -> float:
    """Throughput in GB/s (decimal GB, matching the paper's units)."""
    return (nbytes / 1e9) / seconds if seconds > 0 else 0.0


def mbps(nbytes: int, seconds: float) -> float:
    return (nbytes / 1e6) / seconds if seconds > 0 else 0.0


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds


def ratio(original: int, compressed: int) -> float:
    """Compression ratio as original/compressed (bigger is better)."""
    return original / compressed if compressed else 0.0


def human_bytes(nbytes: float) -> str:
    """1536 -> '1.5 KB' (decimal units, as the paper reports)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(nbytes) < 1000 or unit == "TB":
            if unit == "B":
                return f"{int(nbytes)} {unit}"
            return f"{nbytes:.1f} {unit}"
        nbytes /= 1000.0
    raise AssertionError("unreachable")


@dataclass
class Table:
    """A fixed-column text table, printed the same way everywhere."""

    headers: list[str]
    rows: list[list[str]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rows is None:
            self.rows = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self, title: str | None = None) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))

        def fmt(cells: Iterable[str]) -> str:
            return "  ".join(cell.rjust(width)
                             for cell, width in zip(cells, widths))

        lines = []
        if title:
            lines.append(title)
        lines.append(fmt(self.headers))
        lines.append(fmt("-" * width for width in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
