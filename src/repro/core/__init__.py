"""Public API: accelerator sessions, offload policy, reporting."""

from .analyze import Analysis, StrategyEstimate, analyze
from .api import CompressedBuffer, NxGzip, SessionStats, software_decompress
from .metrics import Table, gbps, human_bytes, mbps, ratio, speedup
from .offload import OffloadAdvisor, Recommendation, Route
from .plot import bar_chart, line_chart
from .stream import NxCompressStream, NxDecompressStream, StreamStats

__all__ = [
    "analyze",
    "Analysis",
    "StrategyEstimate",
    "NxCompressStream",
    "NxDecompressStream",
    "StreamStats",
    "NxGzip",
    "CompressedBuffer",
    "SessionStats",
    "software_decompress",
    "OffloadAdvisor",
    "Recommendation",
    "Route",
    "Table",
    "line_chart",
    "bar_chart",
    "gbps",
    "mbps",
    "ratio",
    "speedup",
    "human_bytes",
]
