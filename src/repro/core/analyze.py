"""Compressibility analysis: what will this data do on the accelerator?

The production stack faces this question constantly (which strategy to
request, whether to bother compressing at all); this module answers it
from a bounded sample rather than a full compression pass, the way a
library-level heuristic must.

``analyze(data)`` samples up to a few extents, runs the NX scan pipeline
on the sample only, and reports estimated ratio per strategy, the
dominant byte class, and a recommendation (strategy + whether to skip
compression entirely for incompressible input).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..deflate.compress import (
    build_dynamic_code,
    payload_cost_bits,
    token_frequencies,
)
from ..deflate.constants import fixed_dist_lengths, fixed_litlen_lengths
from ..nx.dht import DhtStrategy, canned_dht, select_canned
from ..nx.params import POWER9, EngineParams
from ..nx.pipeline import NxMatchPipeline
from ..workloads.generators import shannon_entropy_bits_per_byte

SAMPLE_EXTENT = 16384
MAX_EXTENTS = 4
INCOMPRESSIBLE_THRESHOLD = 1.05


@dataclass(frozen=True)
class StrategyEstimate:
    """Predicted outcome of one DHT strategy on the sampled data."""

    strategy: DhtStrategy
    estimated_ratio: float
    table_cycles: int


@dataclass(frozen=True)
class Analysis:
    """The analyzer's full report."""

    sample_bytes: int
    entropy_bits_per_byte: float
    match_coverage: float           # fraction of bytes covered by matches
    data_class: str                 # canned-template classification
    estimates: tuple[StrategyEstimate, ...]
    recommended: DhtStrategy
    worth_compressing: bool

    def estimate_for(self, strategy: DhtStrategy) -> StrategyEstimate:
        for est in self.estimates:
            if est.strategy is strategy:
                return est
        raise KeyError(strategy)


def _sample(data: bytes) -> bytes:
    """Take up to MAX_EXTENTS evenly spaced extents."""
    if len(data) <= SAMPLE_EXTENT * MAX_EXTENTS:
        return data
    step = len(data) // MAX_EXTENTS
    return b"".join(data[i * step:i * step + SAMPLE_EXTENT]
                    for i in range(MAX_EXTENTS))


def analyze(data: bytes,
            params: EngineParams = POWER9.engine) -> Analysis:
    """Estimate accelerator behaviour for ``data`` from a sample."""
    sample = _sample(data)
    if not sample:
        return Analysis(sample_bytes=0, entropy_bits_per_byte=0.0,
                        match_coverage=0.0, data_class="text",
                        estimates=(), recommended=DhtStrategy.FIXED,
                        worth_compressing=False)

    scan = NxMatchPipeline(params).scan(sample)
    lit_freq, dist_freq = token_frequencies(scan.tokens)
    coverage = scan.stats.match_bytes / max(1, scan.stats.input_bytes)
    data_class = select_canned(sample)

    estimates = []
    for strategy in (DhtStrategy.FIXED, DhtStrategy.CANNED,
                     DhtStrategy.DYNAMIC):
        if strategy is DhtStrategy.FIXED:
            lit_lengths = fixed_litlen_lengths()
            dist_lengths = fixed_dist_lengths()
            cycles = 0
        elif strategy is DhtStrategy.CANNED:
            dht = canned_dht(data_class)
            lit_lengths = list(dht.litlen_lengths)
            dist_lengths = list(dht.dist_lengths)
            cycles = dht.generation_cycles
        else:
            lit_lengths, dist_lengths = build_dynamic_code(lit_freq,
                                                           dist_freq)
            from ..nx.dht import dynamic_generation_cycles

            cycles = dynamic_generation_cycles(lit_freq, dist_freq,
                                               params)
        bits = payload_cost_bits(lit_freq, dist_freq, lit_lengths,
                                 dist_lengths)
        ratio = len(sample) * 8 / bits if bits else 0.0
        estimates.append(StrategyEstimate(strategy=strategy,
                                          estimated_ratio=ratio,
                                          table_cycles=cycles))

    best = max(estimates, key=lambda e: e.estimated_ratio)
    worth = best.estimated_ratio >= INCOMPRESSIBLE_THRESHOLD
    return Analysis(
        sample_bytes=len(sample),
        entropy_bits_per_byte=shannon_entropy_bits_per_byte(sample),
        match_coverage=coverage,
        data_class=data_class,
        estimates=tuple(estimates),
        recommended=best.strategy if worth else DhtStrategy.FIXED,
        worth_compressing=worth,
    )
