"""Offload policy: when hardware beats software for a given request.

The paper's system integration point: the user-space library decides per
call whether the accelerator's invocation overhead is worth paying.  The
advisor exposes the break-even curve and a recommend() that names the
concrete registry backend to execute on — ``nx`` or ``dfltcc`` when the
accelerator wins, ``software`` when it does not — so callers can hand
the choice straight to :func:`repro.backend.create_backend`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..backend.registry import default_backend
from ..nx.params import MachineParams
from ..perf.timing import OffloadTimingModel


class Route(enum.Enum):
    HARDWARE = "hardware"
    SOFTWARE = "software"


@dataclass(frozen=True)
class Recommendation:
    """Advice for one request: the route and the backend to run it on."""

    route: Route
    backend: str
    hw_latency_s: float
    sw_latency_s: float
    break_even_bytes: float

    @property
    def gain(self) -> float:
        """Latency ratio of the rejected path over the chosen one."""
        if self.route is Route.HARDWARE:
            return self.sw_latency_s / self.hw_latency_s
        return self.hw_latency_s / self.sw_latency_s


@dataclass
class OffloadAdvisor:
    """Per-machine offload decisions with a configurable safety margin."""

    machine: MachineParams
    op: str = "compress"
    level: int = 6
    margin: float = 1.0  # require hw to win by this factor
    hardware_backend: str | None = None  # default: the machine's native path

    def __post_init__(self) -> None:
        self._timing = OffloadTimingModel(self.machine, op=self.op)
        if self.hardware_backend is None:
            self.hardware_backend = default_backend(self.machine)

    def break_even_bytes(self) -> float:
        return self._timing.break_even_bytes(self.level)

    def recommend(self, nbytes: int,
                  queue_wait_s: float = 0.0) -> Recommendation:
        hw = self._timing.offload_latency(nbytes, queue_wait_s).total
        sw = self._timing.software_latency(nbytes, self.level)
        route = Route.HARDWARE if sw > hw * self.margin else Route.SOFTWARE
        backend = (self.hardware_backend if route is Route.HARDWARE
                   else "software")
        return Recommendation(route=route, backend=backend,
                              hw_latency_s=hw, sw_latency_s=sw,
                              break_even_bytes=self.break_even_bytes())

    def curve(self, sizes: list[int]) -> list[Recommendation]:
        return [self.recommend(size) for size in sizes]
