"""Streaming compression/decompression over the accelerator.

Real applications (Spark shuffles, gzip of a file larger than memory)
feed the accelerator one buffer at a time.  The NX supports this with
*continuation* requests: each request carries the previous 32 KB of
plaintext as a history DDE, emits non-final DEFLATE blocks, and ends
with a sync flush so the per-request outputs concatenate into one valid
stream.  :class:`NxCompressStream` drives that protocol through the
session driver and assembles the container (gzip/zlib/raw) around it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..deflate.checksums import adler32, crc32
from ..deflate.constants import WINDOW_SIZE
from ..deflate.containers import (
    GZIP_MAGIC,
    GZIP_METHOD_DEFLATE,
    GZIP_OS_UNKNOWN,
    ZLIB_CM_DEFLATE,
    ZLIB_WINDOW_32K,
)
from ..deflate.inflate import inflate_with_stats
from ..errors import ReproError


class StreamStateError(ReproError):
    """The stream was used after finish() or out of order."""


@dataclass
class StreamStats:
    """Totals for one streaming session."""

    chunks: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    modelled_seconds: float = 0.0


@dataclass
class NxCompressStream:
    """Chunk-at-a-time compression through an :class:`~repro.NxGzip`.

    Usage::

        stream = session.compress_stream(fmt="gzip")
        out = stream.write(chunk1) + stream.write(chunk2) + stream.finish()
    """

    session: object  # NxGzip (kept loose to avoid an import cycle)
    strategy: str = "auto"
    fmt: str = "gzip"
    stats: StreamStats = field(default_factory=StreamStats)
    _history: bytes = b""
    _crc: int = 0
    _adler: int = 1
    _isize: int = 0
    _started: bool = False
    _finished: bool = False

    def _header(self) -> bytes:
        if self.fmt == "gzip":
            return (GZIP_MAGIC + bytes([GZIP_METHOD_DEFLATE, 0])
                    + struct.pack("<I", 0)
                    + bytes([0, GZIP_OS_UNKNOWN]))
        if self.fmt == "zlib":
            header = ((ZLIB_WINDOW_32K << 4 | ZLIB_CM_DEFLATE) << 8) | 0x80
            header += 31 - header % 31
            return struct.pack(">H", header)
        return b""

    def _trailer(self) -> bytes:
        if self.fmt == "gzip":
            return struct.pack("<II", self._crc, self._isize & 0xFFFFFFFF)
        if self.fmt == "zlib":
            return struct.pack(">I", self._adler)
        return b""

    def write(self, chunk: bytes, final: bool = False) -> bytes:
        """Compress one chunk; returns the wire bytes it produced."""
        if self._finished:
            raise StreamStateError("stream already finished")
        out = b"" if self._started else self._header()
        self._started = True

        result = self.session.compress_chunk(
            chunk, strategy=self.strategy, history=self._history,
            final=final)
        out += result.output
        self.stats.chunks += 1
        self.stats.bytes_in += len(chunk)
        self.stats.modelled_seconds += result.stats.elapsed_seconds

        self._crc = crc32(chunk, self._crc)
        self._adler = adler32(chunk, self._adler)
        self._isize += len(chunk)
        self._history = (self._history + chunk)[-WINDOW_SIZE:]
        if final:
            self._finished = True
            out += self._trailer()
        self.stats.bytes_out += len(out)
        return out

    def finish(self, chunk: bytes = b"") -> bytes:
        """Compress the last chunk (may be empty) and close the stream."""
        return self.write(chunk, final=True)


@dataclass
class NxDecompressStream:
    """Chunk-at-a-time raw-DEFLATE decompression with window carry.

    Each call decodes one *complete request's worth* of blocks (i.e. the
    byte-aligned unit an :class:`NxCompressStream` produced), using the
    carried window as history — the decompression-side continuation
    protocol.
    """

    session: object
    stats: StreamStats = field(default_factory=StreamStats)
    _history: bytes = b""

    def decode_unit(self, unit: bytes, final: bool = False) -> bytes:
        """Decode one continuation unit and return its plaintext."""
        if final:
            payload = unit
        else:
            # A non-final unit ends with the sync-flush empty stored
            # block; close the stream for the one-shot decoder by
            # rewriting that block's header bit to "final".
            payload = _mark_final(unit)
        out, _stats, _bits = inflate_with_stats(payload,
                                                history=self._history)
        self._history = (self._history + out)[-WINDOW_SIZE:]
        self.stats.chunks += 1
        self.stats.bytes_in += len(unit)
        self.stats.bytes_out += len(out)
        return out


def _mark_final(unit: bytes) -> bytes:
    """Flip the trailing sync-flush stored block into a final block.

    The sync flush is always ``00 00 FF FF`` preceded by the 3 header
    bits (0 + BTYPE 00) and padding; setting the final bit means making
    that empty stored block the stream terminator, which for the fixed
    trailer layout is byte ``unit[-5] | 0x01`` when the flush begins a
    fresh byte... rather than chase bit offsets, append a final empty
    stored block instead — decoders accept consecutive empty blocks.
    """
    return unit + b"\x01\x00\x00\xff\xff"


def reassemble(units: list[bytes]) -> bytes:
    """Concatenate continuation units into one complete raw stream."""
    return b"".join(units)
