"""Chunked-parallel compression: determinism, seams, and the backend."""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend.registry import backend_names, create_backend
from repro.deflate import deflate, inflate, parallel_deflate
from repro.deflate.constants import WINDOW_SIZE
from repro.errors import DeflateError
from repro.workloads.generators import generate

CHUNK = 1 << 15


@pytest.fixture(scope="module")
def corpus() -> bytes:
    return generate("markov_text", 120000, seed=31)


def test_output_is_one_valid_stream(corpus):
    result = parallel_deflate(corpus, level=6, chunk_size=CHUNK, workers=1)
    assert zlib.decompress(result.data, -15) == corpus
    assert inflate(result.data) == corpus
    assert result.stats.input_bytes == len(corpus)


def test_identical_bytes_for_every_worker_count(corpus):
    outs = [parallel_deflate(corpus, level=6, chunk_size=CHUNK,
                             workers=w).data for w in (1, 2, 4)]
    assert outs[0] == outs[1] == outs[2]


def test_caller_owned_executor(corpus):
    serial = parallel_deflate(corpus, level=6, chunk_size=CHUNK, workers=1)
    with ThreadPoolExecutor(max_workers=3) as pool:
        pooled = parallel_deflate(corpus, level=6, chunk_size=CHUNK,
                                  executor=pool)
    assert pooled.data == serial.data


def test_empty_and_tiny_inputs():
    assert zlib.decompress(parallel_deflate(b"").data, -15) == b""
    assert zlib.decompress(parallel_deflate(b"x").data, -15) == b"x"


def test_single_chunk_matches_serial_deflate(corpus):
    """One chunk means no seams: bytes equal the serial compressor's."""
    small = corpus[:20000]
    assert parallel_deflate(small, level=6).data == deflate(
        small, level=6).data


def test_cross_chunk_history_priming():
    """Chunk 2 is a copy of chunk 1; the seam window must catch it.

    A random block makes the effect unambiguous: its trigrams repeat
    nowhere inside a chunk, so every chunk-2 match must reach across the
    seam into the primed window — without priming the copy is
    incompressible noise.  The block is kept just under the window size:
    a window-aligned copy sits at distance 32768, which the matcher
    (like zlib's) cannot reach.
    """
    size = WINDOW_SIZE - 4096
    block = generate("random_bytes", size, seed=32)
    doubled = block + block
    primed = parallel_deflate(doubled, level=6, chunk_size=size, workers=1)
    unprimed = deflate(block, level=6, final=False).data + deflate(
        block, level=6).data
    assert zlib.decompress(primed.data, -15) == doubled
    assert len(primed.data) < 0.6 * len(unprimed)


def test_final_false_is_continuable(corpus):
    head, tail = corpus[:70000], corpus[70000:]
    cont = parallel_deflate(head, level=6, chunk_size=CHUNK,
                            final=False).data
    fin = deflate(tail, level=6, history=head[-WINDOW_SIZE:]).data
    assert zlib.decompress(cont + fin, -15) == corpus


def test_history_primes_first_chunk(corpus):
    history = generate("markov_text", 40000, seed=33)
    result = parallel_deflate(corpus[:60000], level=6, chunk_size=CHUNK,
                              history=history)
    decoder = zlib.decompressobj(wbits=-15, zdict=history[-WINDOW_SIZE:])
    assert decoder.decompress(result.data) == corpus[:60000]


def test_bad_chunk_size_rejected():
    with pytest.raises(DeflateError, match="chunk_size"):
        parallel_deflate(b"data", chunk_size=0)


def test_stats_match_worker_count_invariance(corpus):
    one = parallel_deflate(corpus, level=6, chunk_size=CHUNK, workers=1)
    two = parallel_deflate(corpus, level=6, chunk_size=CHUNK, workers=2)
    assert one.stats == two.stats
    assert one.blocks == two.blocks


class TestSoftwareParallelBackend:
    def test_registered(self):
        assert "software-parallel" in backend_names()

    @pytest.fixture()
    def backend(self):
        backend = create_backend("software-parallel", machine="power9",
                                 workers=2, chunk_size=CHUNK)
        yield backend
        backend.close()

    def test_raw_roundtrip(self, backend, corpus):
        out = backend.compress(corpus, fmt="raw")
        assert zlib.decompress(out.output, -15) == corpus
        back = backend.decompress(out.output, fmt="raw")
        assert back.output == corpus

    def test_gzip_and_zlib_frames(self, backend, corpus):
        import gzip
        data = corpus[:50000]
        assert gzip.decompress(backend.compress(data, fmt="gzip").output
                               ) == data
        assert zlib.decompress(backend.compress(data, fmt="zlib").output
                               ) == data

    def test_pool_usability(self, corpus):
        from repro.backend.pool import AcceleratorPool
        pool = AcceleratorPool("power9", chips=2, backend="software-parallel",
                               workers=2, chunk_size=CHUNK)
        out = pool.compress(corpus[:50000], fmt="raw")
        assert zlib.decompress(out.output, -15) == corpus[:50000]

    def test_capabilities_scale_with_workers(self):
        one = create_backend("software-parallel", machine="power9",
                             workers=1)
        four = create_backend("software-parallel", machine="power9",
                              workers=4)
        assert four.capabilities().compress_gbps == pytest.approx(
            4 * one.capabilities().compress_gbps)
