"""Truncated-stream regression suite.

Every prefix of a valid DEFLATE stream that stops before the final
end-of-block must raise the uniform ``DeflateError("unexpected end of
DEFLATE stream")`` — never ``IndexError``, never a silent short result,
and never a misleading structural error.  The batched refill paths in
``bitio``/``inflate`` read eight bytes speculatively, so this pins the
boundary accounting at *every* byte position of representative streams
covering all three block types, multi-block streams, and the RLE
strategy.
"""

from __future__ import annotations

import pytest

from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate
from repro.errors import DeflateError
from repro.workloads.generators import generate


def _streams() -> dict[str, bytes]:
    text = generate("markov_text", 2000, seed=21)
    noise = generate("random_bytes", 600, seed=22)
    streams = {
        "stored": deflate(noise, level=0).data,
        "fixed": deflate(b"abcabcabcabc", level=6).data,
        "dynamic": deflate(text, level=6).data,
        "multiblock": deflate(text, level=6, block_tokens=64).data,
        "rle": deflate(b"a" * 400 + text[:400], level=6,
                       strategy="rle").data,
    }
    return streams


@pytest.mark.parametrize("name,stream", _streams().items(),
                         ids=list(_streams()))
def test_every_byte_truncation_raises(name: str, stream: bytes) -> None:
    for cut in range(len(stream)):
        with pytest.raises(DeflateError, match="unexpected end"):
            inflate(stream[:cut])


def test_empty_input_raises() -> None:
    with pytest.raises(DeflateError, match="unexpected end"):
        inflate(b"")


def test_full_stream_still_decodes() -> None:
    """The truncation guard must not fire on the intact stream."""
    text = generate("markov_text", 2000, seed=21)
    assert inflate(deflate(text, level=6).data) == text
