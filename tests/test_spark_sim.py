"""DES Spark simulation: scheduling, contention, analytic cross-check."""

import pytest

from repro.nx.params import POWER9, Z15
from repro.workloads.spark import SparkJobModel, Stage, tpcds_like_profile
from repro.workloads.spark_sim import ClusterSpec, SparkDagSim


@pytest.fixture(scope="module")
def sim():
    return SparkDagSim(cluster=ClusterSpec(nodes=4, cores_per_node=10))


class TestScheduling:
    def test_all_tasks_run(self, sim):
        stages = tpcds_like_profile()
        outcome = sim.run(stages, offload=True)
        expected = len(stages) * sim.cluster.total_cores \
            * sim.cluster.tasks_per_stage_per_core
        assert outcome.tasks_run == expected

    def test_offload_beats_software(self, sim):
        sw = sim.run(offload=False)
        off = sim.run(offload=True)
        assert off.makespan_seconds < sw.makespan_seconds

    def test_more_cores_faster(self):
        small = SparkDagSim(cluster=ClusterSpec(nodes=2,
                                                cores_per_node=5))
        large = SparkDagSim(cluster=ClusterSpec(nodes=4,
                                                cores_per_node=10))
        assert (large.run(offload=False).makespan_seconds
                < small.run(offload=False).makespan_seconds)

    def test_deterministic(self, sim):
        a = sim.run(offload=True)
        b = sim.run(offload=True)
        assert a.makespan_seconds == pytest.approx(b.makespan_seconds)

    def test_empty_job(self, sim):
        outcome = sim.run([], offload=True)
        assert outcome.makespan_seconds == 0.0
        assert outcome.tasks_run == 0


class TestCrossValidation:
    def test_matches_analytic_model(self, sim):
        """The DES makespan ratio lands within a few percent of the
        Amdahl-composed analytic speedup — the E6 cross-check."""
        analytic = SparkJobModel(machine=POWER9,
                                 executor_cores=40).run().speedup
        simulated = sim.speedup()
        assert simulated == pytest.approx(analytic, rel=0.05)

    def test_software_makespan_matches_analytic(self, sim):
        analytic = SparkJobModel(machine=POWER9,
                                 executor_cores=40).run()
        sw = sim.run(offload=False)
        assert sw.makespan_seconds == pytest.approx(
            analytic.software_seconds, rel=0.05)


class TestContention:
    def test_accelerator_underutilized_at_tpcds_share(self, sim):
        """One engine per node absorbs the whole cluster's codec work
        with room to spare — the sharing story quantified."""
        outcome = sim.run(offload=True)
        assert outcome.accel_utilization(sim.cluster.nodes) < 0.1

    def test_codec_heavy_job_shows_contention(self):
        gb = 10 ** 9
        stages = [Stage("shuffle-storm", 10.0, int(8 * gb), int(8 * gb))
                  for _ in range(3)]
        sim = SparkDagSim(cluster=ClusterSpec(nodes=1, cores_per_node=16))
        outcome = sim.run(stages, offload=True)
        assert outcome.accel_utilization(1) > 0.3
        assert outcome.accel_wait_seconds > 0

    def test_z15_offload_not_slower(self):
        p9 = SparkDagSim(machine=POWER9).run(offload=True)
        z15 = SparkDagSim(machine=Z15).run(offload=True)
        assert z15.makespan_seconds <= p9.makespan_seconds * 1.05
