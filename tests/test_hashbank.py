"""Banked hash table: candidate quality, capacity, conflict accounting."""

from repro.nx.hashbank import BankedHashTable
from repro.nx.params import POWER9, EngineParams


def small_params(**overrides) -> EngineParams:
    base = dict(
        name="tiny", clock_ghz=1.0, scan_bytes_per_cycle=4,
        decomp_bytes_per_cycle=8, hash_banks=4, hash_ways=2,
        hash_sets_log2=4, hash_ports=1, compare_window=16,
    )
    base.update(overrides)
    return EngineParams(**base)


class TestLookupInsert:
    def test_first_lookup_has_no_candidates(self):
        t = BankedHashTable(POWER9.engine)
        cands, _access = t.lookup_insert(b"abcdef", 0)
        assert cands == []

    def test_repeat_prefix_found(self):
        t = BankedHashTable(POWER9.engine)
        data = b"abcXabc"
        t.lookup_insert(data, 0)
        cands, _ = t.lookup_insert(data, 4)
        assert 0 in cands

    def test_most_recent_first(self):
        t = BankedHashTable(small_params(hash_ways=4))
        data = b"abc" + b"abc" + b"abc" + b"abc"
        for pos in (0, 3, 6):
            t.lookup_insert(data, pos)
        cands, _ = t.lookup_insert(data, 9)
        assert cands == [6, 3, 0]

    def test_way_capacity_evicts_fifo(self):
        t = BankedHashTable(small_params(hash_ways=2))
        data = b"abc" * 10
        for pos in (0, 3, 6):
            t.lookup_insert(data, pos)
        cands, _ = t.lookup_insert(data, 9)
        assert cands == [6, 3]  # position 0 evicted

    def test_window_filtering(self):
        params = POWER9.engine
        t = BankedHashTable(params)
        data = b"xyz" + bytes(params.window_bytes + 10) + b"xyz"
        t.lookup_insert(data, 0)
        cands, _ = t.lookup_insert(data, params.window_bytes + 13)
        assert 0 not in cands

    def test_counters(self):
        t = BankedHashTable(POWER9.engine)
        for i in range(5):
            t.lookup_insert(b"abcdefghij", i)
        assert t.lookups == 5
        assert t.insertions == 5

    def test_reset_clears(self):
        t = BankedHashTable(POWER9.engine)
        t.lookup_insert(b"abcabc", 0)
        t.reset()
        cands, _ = t.lookup_insert(b"abcabc", 3)
        assert cands == []
        assert t.lookups == 1


class TestConflicts:
    def test_no_accesses_no_stall(self):
        t = BankedHashTable(small_params())
        assert t.charge_group_conflicts([]) == 0

    def test_distinct_banks_no_stall(self):
        t = BankedHashTable(small_params(hash_ports=1))
        assert t.charge_group_conflicts([(0, 1), (1, 2), (2, 3)]) == 0

    def test_same_bank_distinct_hash_stalls(self):
        t = BankedHashTable(small_params(hash_ports=1))
        assert t.charge_group_conflicts([(0, 1), (0, 2), (0, 3)]) == 2

    def test_same_hash_merged(self):
        t = BankedHashTable(small_params(hash_ports=1))
        assert t.charge_group_conflicts([(0, 7), (0, 7), (0, 7)]) == 0

    def test_dual_port_halves_stalls(self):
        single = BankedHashTable(small_params(hash_ports=1))
        dual = BankedHashTable(small_params(hash_ports=2))
        accesses = [(0, i) for i in range(4)]
        assert single.charge_group_conflicts(list(accesses)) == 3
        assert dual.charge_group_conflicts(list(accesses)) == 1

    def test_stall_counter_accumulates(self):
        t = BankedHashTable(small_params(hash_ports=1))
        t.charge_group_conflicts([(0, 1), (0, 2)])
        t.charge_group_conflicts([(1, 1), (1, 2)])
        assert t.conflict_stalls == 2


class TestHashFunction:
    def test_deterministic(self):
        assert (BankedHashTable.hash3(b"abcd", 0)
                == BankedHashTable.hash3(b"abcd", 0))

    def test_depends_on_all_three_bytes(self):
        h0 = BankedHashTable.hash3(b"abc", 0)
        assert h0 != BankedHashTable.hash3(b"abd", 0)
        assert h0 != BankedHashTable.hash3(b"adc", 0)
        assert h0 != BankedHashTable.hash3(b"dbc", 0)
