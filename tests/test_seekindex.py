"""Seek index: serialisation safety and random reads that skip work.

The invariant under test: an index can be *lost* (unreadable blobs
raise the typed ``SeekIndexError`` and callers fall back to a full
decode) but it can never be *wrong* — no corruption of the sidecar may
steer ``read_range`` toward bytes that differ from decompress-then-
slice.
"""

import pytest

from repro.deflate.containers import gzip_compress, zlib_compress
from repro.deflate.parallel_inflate import parallel_inflate, read_range
from repro.deflate.seekindex import (DEFAULT_SPACING, MAGIC, SeekIndex,
                                     build_index)
from repro.errors import DeflateError, ReproError, SeekIndexError
from repro.obs.metrics import REGISTRY
from repro.workloads.generators import generate


@pytest.fixture(scope="module")
def archive():
    """Three-member gzip archive plus its plain bytes and index."""
    parts = [generate("markov_text", 80000, seed=61),
             generate("json_records", 60000, seed=62),
             generate("binary_executable", 50000, seed=63)]
    plain = b"".join(parts)
    blob = b"".join(gzip_compress(p, level=6) for p in parts)
    result = parallel_inflate(blob, "gzip", workers=1, build_index=True,
                              index_spacing=32768)
    assert result.data == plain
    return blob, plain, result.index


class TestRoundTrip:
    def test_bytes_round_trip(self, archive):
        _, _, index = archive
        back = SeekIndex.from_bytes(index.to_bytes())
        assert back.fmt == index.fmt
        assert back.compressed_size == index.compressed_size
        assert back.output_size == index.output_size
        assert back.members == index.members
        assert back.points == index.points

    def test_save_load(self, archive, tmp_path):
        _, _, index = archive
        path = tmp_path / "a.rsix"
        index.save(path)
        assert SeekIndex.load(path).points == index.points

    def test_save_is_atomic_replace(self, archive, tmp_path,
                                    monkeypatch):
        """A crashed save never leaves a torn sidecar behind.

        The write goes to a same-directory temp file first; if the
        write dies, the old index must survive untouched and the temp
        file must be cleaned up.
        """
        import os

        _, _, index = archive
        path = tmp_path / "a.rsix"
        index.save(path)
        before = path.read_bytes()

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("disk went away")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            index.save(path)
        monkeypatch.setattr(os, "replace", real_replace)
        # Old sidecar intact, no temp litter, still loads.
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.rsix"]
        assert SeekIndex.load(path).points == index.points

    def test_build_index_function(self, archive):
        blob, plain, _ = archive
        index = build_index(blob, "gzip", spacing=32768)
        assert index.output_size == len(plain)
        assert index.compressed_size == len(blob)
        rr = read_range(blob, 100000, 3000, index=index)
        assert rr.data == plain[100000:103000]

    def test_locate_monotonic(self, archive):
        _, _, index = archive
        offs = [p.out_offset for p in index.points]
        assert offs == sorted(offs)
        assert index.locate(0).out_offset == 0
        late = index.locate(index.output_size - 1)
        assert late.out_offset <= index.output_size - 1


class TestCorruption:
    """Every mutilation must raise SeekIndexError, never decode wrong."""

    def test_bad_magic(self, archive):
        _, _, index = archive
        blob = bytearray(index.to_bytes())
        blob[:4] = b"XSIX"
        with pytest.raises(SeekIndexError):
            SeekIndex.from_bytes(bytes(blob))

    def test_unknown_version(self, archive):
        _, _, index = archive
        blob = bytearray(index.to_bytes())
        blob[4] = 0xFF  # version low byte
        with pytest.raises(SeekIndexError):
            SeekIndex.from_bytes(bytes(blob))

    @pytest.mark.parametrize("cut", [0, 3, 10, 40, -5, -1])
    def test_truncation(self, archive, cut):
        _, _, index = archive
        blob = index.to_bytes()
        with pytest.raises(SeekIndexError):
            SeekIndex.from_bytes(blob[:cut if cut >= 0 else cut])

    @pytest.mark.parametrize("pos", [6, 20, 100, -8])
    def test_bit_flips_caught_by_crc(self, archive, pos):
        _, _, index = archive
        blob = bytearray(index.to_bytes())
        blob[pos] ^= 0x01
        with pytest.raises(SeekIndexError):
            SeekIndex.from_bytes(bytes(blob))

    def test_stray_trailing_bytes(self, archive):
        _, _, index = archive
        with pytest.raises(SeekIndexError):
            SeekIndex.from_bytes(index.to_bytes() + b"\x00")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SeekIndexError):
            SeekIndex.load(tmp_path / "nope.rsix")

    def test_magic_constant(self):
        assert MAGIC == b"RSIX"

    def test_mismatched_payload_rejected(self, archive):
        blob, _, index = archive
        with pytest.raises(SeekIndexError):
            read_range(blob[:-1], 0, 10, index=index)

    def test_mismatched_fmt_rejected(self, archive):
        blob, _, index = archive
        with pytest.raises(SeekIndexError):
            read_range(blob, 0, 10, index=index, fmt="zlib")


class TestReadRange:
    @pytest.mark.parametrize("kind", ["markov_text", "json_records",
                                      "random_bytes", "zero_bytes",
                                      "csv_table", "dna_sequence"])
    def test_golden_parity_per_family(self, kind):
        parts = [generate(kind, 45000, seed=s) for s in (71, 72)]
        plain = b"".join(parts)
        blob = b"".join(gzip_compress(p, level=6) for p in parts)
        result = parallel_inflate(blob, "gzip", workers=1,
                                  build_index=True, index_spacing=16384)
        for off in (0, 1, 44999, 45000, 60001, len(plain) - 10):
            rr = read_range(blob, off, 4096, index=result.index)
            assert rr.data == plain[off:off + 4096], (kind, off)

    def test_prefix_is_skipped(self, archive):
        blob, plain, index = archive
        off = 150000
        rr = read_range(blob, off, 2000, index=index)
        assert rr.data == plain[off:off + 2000]
        assert rr.skipped_bytes > 0
        assert rr.decoded_bytes < len(plain)
        assert rr.skipped_bytes + rr.decoded_bytes >= off + 2000

    def test_read_crossing_member_boundary(self, archive):
        blob, plain, index = archive
        off = 80000 - 500  # straddles member 0 -> 1
        rr = read_range(blob, off, 1000, index=index)
        assert rr.data == plain[off:off + 1000]

    def test_clip_past_end(self, archive):
        blob, plain, index = archive
        rr = read_range(blob, len(plain) - 100, 5000, index=index)
        assert rr.data == plain[-100:]

    def test_zero_length(self, archive):
        blob, _, index = archive
        assert read_range(blob, 1000, 0, index=index).data == b""

    def test_negative_rejected(self, archive):
        blob, _, index = archive
        with pytest.raises(DeflateError):
            read_range(blob, -1, 10, index=index)
        with pytest.raises(DeflateError):
            read_range(blob, 0, -10, index=index)

    def test_zlib_index_round_trip(self):
        data = generate("markov_text", 90000, seed=73)
        blob = zlib_compress(data, level=6)
        result = parallel_inflate(blob, "zlib", workers=1,
                                  build_index=True, index_spacing=16384)
        rr = read_range(blob, 40000, 1000, index=result.index)
        assert rr.data == data[40000:41000]

    def test_metrics_record_skip(self, archive):
        blob, plain, index = archive
        REGISTRY.enabled = True
        try:
            REGISTRY.reset()
            read_range(blob, 150000, 1024, index=index)
            snap = REGISTRY.snapshot()
            skipped = snap["repro_inflate_range_skipped_bytes_total"]
            assert skipped["values"][0]["value"] > 0
            reads = snap["repro_inflate_random_reads_total"]
            assert reads["values"][0]["value"] == 1
        finally:
            REGISTRY.enabled = False
            REGISTRY.reset()

    def test_default_spacing_sane(self):
        assert DEFAULT_SPACING == 1 << 20


class TestReproErrorHierarchy:
    def test_seekindexerror_is_reproerror_not_deflate(self):
        assert issubclass(SeekIndexError, ReproError)
        assert not issubclass(SeekIndexError, DeflateError)
