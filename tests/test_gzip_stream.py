"""Incremental gzip reader."""

import gzip as stdgzip
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.containers import gzip_compress
from repro.deflate.gzip_stream import GzipReader
from repro.errors import ChecksumError, DeflateError


def run_chunks(payload: bytes, size: int) -> tuple[bytes, GzipReader]:
    reader = GzipReader()
    out = bytearray()
    for i in range(0, len(payload), size):
        out += reader.feed(payload[i:i + size])
    out += reader.finish()
    return bytes(out), reader


class TestSingleMember:
    def test_one_shot(self, text_20k):
        out, reader = run_chunks(gzip_compress(text_20k), 1 << 20)
        assert out == text_20k
        assert reader.members_read == 1
        assert reader.finished

    @pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
    def test_chunkings(self, chunk, json_20k):
        out, _reader = run_chunks(stdgzip.compress(json_20k), chunk)
        assert out == json_20k

    def test_header_with_filename_split(self, text_20k):
        buf = io.BytesIO()
        with stdgzip.GzipFile(filename="name.bin", mode="wb",
                              fileobj=buf) as handle:
            handle.write(text_20k)
        payload = buf.getvalue()
        reader = GzipReader()
        out = (reader.feed(payload[:5]) + reader.feed(payload[5:12])
               + reader.feed(payload[12:]) + reader.finish())
        assert out == text_20k

    def test_output_streams_early(self, text_20k):
        payload = gzip_compress(text_20k)
        reader = GzipReader()
        early = reader.feed(payload[:len(payload) // 2])
        assert early
        assert early == text_20k[:len(early)]


class TestMultiMember:
    def test_two_members(self, text_20k, json_20k):
        archive = gzip_compress(text_20k) + stdgzip.compress(json_20k)
        out, reader = run_chunks(archive, 333)
        assert out == text_20k + json_20k
        assert reader.members_read == 2

    def test_single_member_mode_rejects_tail(self, text_20k):
        archive = gzip_compress(text_20k) + gzip_compress(b"x")
        reader = GzipReader(allow_multiple_members=False)
        with pytest.raises(DeflateError):
            reader.feed(archive)
            reader.finish()


class TestErrors:
    def test_crc_mismatch(self, text_20k):
        payload = bytearray(gzip_compress(text_20k))
        payload[-6] ^= 0xFF
        reader = GzipReader()
        with pytest.raises(ChecksumError):
            reader.feed(bytes(payload))
            reader.finish()

    def test_isize_mismatch(self, text_20k):
        payload = bytearray(gzip_compress(text_20k))
        payload[-1] ^= 0xFF
        reader = GzipReader()
        with pytest.raises(ChecksumError):
            reader.feed(bytes(payload))
            reader.finish()

    def test_bad_magic(self):
        reader = GzipReader()
        with pytest.raises(DeflateError):
            reader.feed(b"NOTGZIP---" * 2)

    def test_truncated(self, text_20k):
        payload = gzip_compress(text_20k)
        reader = GzipReader()
        reader.feed(payload[: len(payload) // 3])
        with pytest.raises(DeflateError):
            reader.finish()

    def test_empty_input(self):
        reader = GzipReader()
        with pytest.raises(DeflateError):
            reader.finish()


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=3000),
       st.integers(min_value=1, max_value=500))
def test_chunking_invariance_property(data, chunk):
    payload = stdgzip.compress(data)
    out, reader = run_chunks(payload, chunk)
    assert out == data
    assert reader.members_read == 1
