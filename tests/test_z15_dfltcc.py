"""DFLTCC instruction model: function codes, continuation, CC semantics."""

import zlib as stdzlib

import pytest

from repro.errors import AcceleratorError
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.nx.z15 import (
    ConditionCode,
    Dfltcc,
    DfltccFunction,
    ParameterBlock,
    dfltcc_compress,
    dfltcc_expand,
)
from repro.workloads.generators import generate


@pytest.fixture(scope="module")
def payload_200k():
    return generate("json_records", 200000, seed=15)


class TestFacility:
    def test_qaf(self):
        facility = Dfltcc()
        assert facility.query_available_functions() == {
            DfltccFunction.QAF, DfltccFunction.GDHT,
            DfltccFunction.CMPR, DfltccFunction.XPND}

    def test_power9_has_no_dfltcc(self):
        with pytest.raises(AcceleratorError):
            Dfltcc(machine=POWER9)


class TestCmpr:
    def test_single_invocation_small_input(self):
        facility = Dfltcc()
        block = ParameterBlock(dht_strategy=DhtStrategy.DYNAMIC)
        data = b"hello dfltcc " * 100
        result = facility.compress(block, data)
        assert result.cc is ConditionCode.DONE
        assert result.consumed == len(data)
        assert stdzlib.decompress(result.produced, -15) == data

    def test_cc3_partial_completion(self, payload_200k):
        facility = Dfltcc(processing_quantum=65536)
        block = ParameterBlock(dht_strategy=DhtStrategy.DYNAMIC)
        result = facility.compress(block, payload_200k)
        assert result.cc is ConditionCode.PARTIAL
        assert result.consumed == 65536
        assert block.continuation

    def test_reissue_loop_produces_valid_stream(self, payload_200k):
        stream, seconds, invocations = dfltcc_compress(
            payload_200k, quantum=65536)
        assert invocations == 4  # ceil(200000 / 65536)
        assert stdzlib.decompress(stream, -15) == payload_200k
        assert seconds > 0

    def test_quantum_does_not_change_output_validity(self, payload_200k):
        for quantum in (32768, 65536, 1 << 20):
            stream, _s, _i = dfltcc_compress(payload_200k, quantum=quantum)
            assert stdzlib.decompress(stream, -15) == payload_200k

    def test_check_value_accumulates_crc(self, payload_200k):
        facility = Dfltcc(processing_quantum=65536)
        block = ParameterBlock()
        offset = 0
        while offset < len(payload_200k):
            result = facility.compress(block, payload_200k[offset:])
            offset += result.consumed
            if result.cc is ConditionCode.DONE:
                break
        assert block.check_value == stdzlib.crc32(payload_200k)
        assert block.total_in == len(payload_200k)

    def test_op1_full(self):
        facility = Dfltcc()
        block = ParameterBlock()
        result = facility.compress(block, b"abc" * 1000, out_capacity=4)
        assert result.cc is ConditionCode.OP1_FULL
        assert result.consumed == 0
        assert block.total_in == 0  # nothing committed

    def test_history_too_large_rejected(self):
        facility = Dfltcc()
        block = ParameterBlock(history=bytes(40000))
        with pytest.raises(AcceleratorError):
            facility.compress(block, b"abc")

    def test_per_invocation_overhead_sub_microsecond(self):
        facility = Dfltcc()
        assert facility._issue_seconds() < 1e-6


class TestGdht:
    def test_gdht_then_cmpr_uses_dynamic(self, payload_200k):
        facility = Dfltcc()
        block = ParameterBlock()
        assert block.dht_strategy is DhtStrategy.FIXED
        gdht = facility.generate_dht(block, payload_200k[:4096])
        assert gdht.cc is ConditionCode.DONE
        assert block.dht_strategy is DhtStrategy.DYNAMIC

    def test_gdht_improves_ratio(self, payload_200k):
        fixed_stream, _s, _i = dfltcc_compress(
            payload_200k, strategy=DhtStrategy.FIXED)
        facility = Dfltcc()
        block = ParameterBlock()
        facility.generate_dht(block, payload_200k[:4096])
        result = facility.compress(block, payload_200k)
        assert len(result.produced) < len(fixed_stream)

    def test_short_dht_sample_degrades_to_dynamic(self, payload_200k):
        """Regression: a sub-window sample must not drive the canned
        scan off the end of the sample — the facility degrades the
        request to a dynamic DHT instead."""
        from repro.nx.dht import GDHT_SCAN_WINDOW

        data = payload_200k[:8192]
        short = payload_200k[:GDHT_SCAN_WINDOW - 1]

        block = ParameterBlock()
        block.dht_strategy = DhtStrategy.CANNED
        block.dht_sample = short
        result = Dfltcc().compress(block, data)
        assert result.cc is ConditionCode.DONE
        assert stdzlib.decompress(result.produced, wbits=-15) == data

        # Byte-identical to an explicit dynamic request: proof the
        # degraded path used a freshly generated table, not a canned
        # pick computed from a truncated window.
        dyn_block = ParameterBlock()
        dyn_block.dht_strategy = DhtStrategy.DYNAMIC
        dyn = Dfltcc().compress(dyn_block, data)
        assert result.produced == dyn.produced

    def test_full_window_sample_uses_canned_pick(self, payload_200k):
        """A sample covering >= one scan window picks a canned table."""
        from repro.nx.compressor import NxCompressor
        from repro.nx.dht import GDHT_SCAN_WINDOW, select_canned_windowed
        from repro.nx.params import Z15

        data = payload_200k[:8192]
        sample = payload_200k[:GDHT_SCAN_WINDOW]

        block = ParameterBlock()
        block.dht_strategy = DhtStrategy.CANNED
        block.dht_sample = sample
        result = Dfltcc().compress(block, data)
        assert stdzlib.decompress(result.produced, wbits=-15) == data

        expected = NxCompressor(Z15.engine).compress(
            data, strategy=DhtStrategy.CANNED, fmt="raw",
            canned_name=select_canned_windowed(sample))
        assert result.produced == expected.data


class TestXpnd:
    def test_expand_roundtrip(self, payload_200k):
        stream, _s, _i = dfltcc_compress(payload_200k)
        out, seconds = dfltcc_expand(stream)
        assert out == payload_200k
        assert seconds > 0

    def test_expand_grows_output(self, payload_200k):
        facility = Dfltcc()
        stream, _s, _i = dfltcc_compress(payload_200k)
        block = ParameterBlock()
        result = facility.expand(block, stream, out_capacity=100)
        assert result.cc is ConditionCode.OP1_FULL
        result = facility.expand(block, stream,
                                 out_capacity=len(payload_200k) * 2)
        assert result.cc is ConditionCode.DONE
        assert result.produced == payload_200k

    def test_expand_check_value(self, payload_200k):
        stream, _s, _i = dfltcc_compress(payload_200k)
        facility = Dfltcc()
        block = ParameterBlock()
        facility.expand(block, stream)
        assert block.check_value == stdzlib.crc32(payload_200k)


class TestTimingShape:
    def test_sync_path_cheaper_than_p9_for_small_buffers(self):
        """The z15 selling point: no paste/poll, so tiny requests win."""
        from repro.perf.timing import OffloadTimingModel

        data = generate("markov_text", 4096, seed=3)
        _stream, z15_seconds, _i = dfltcc_compress(data)
        p9 = OffloadTimingModel(POWER9)
        assert z15_seconds < p9.offload_latency(4096).total

    def test_quantum_reissues_have_bounded_cost(self, payload_200k):
        """Chunking pays mostly for history refetch (32 KB per re-issue
        through the scan pipe), not for instruction issue — total stays
        within a small factor of one-shot."""
        _s1, one_shot, _i = dfltcc_compress(payload_200k, quantum=1 << 20)
        _s2, chunked, invocations = dfltcc_compress(payload_200k,
                                                    quantum=32768)
        assert invocations > 5
        assert chunked < one_shot * 3.0
        # The issue overhead itself is negligible next to the refetch.
        issue = Dfltcc()._issue_seconds() * invocations
        assert issue < 0.2 * (chunked - one_shot)
