"""NX compressor: bitstream validity, strategies, timing composition."""

import gzip as stdgzip
import zlib as stdzlib

import pytest

from repro.deflate.compress import deflate
from repro.errors import AcceleratorError
from repro.nx.compressor import NxCompressor
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9, Z15


@pytest.fixture(scope="module")
def p9_comp():
    return NxCompressor(POWER9.engine)


class TestFunctional:
    @pytest.mark.parametrize("strategy", list(DhtStrategy))
    def test_stdlib_decodes_all_strategies(self, p9_comp, strategy,
                                           payload_suite):
        for name, data in payload_suite.items():
            result = p9_comp.compress(data, strategy=strategy)
            assert stdzlib.decompress(result.data, -15) == data, (
                name, strategy)

    def test_gzip_format(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, fmt="gzip")
        assert stdgzip.decompress(result.data) == text_20k

    def test_zlib_format(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, fmt="zlib")
        assert stdzlib.decompress(result.data) == text_20k

    def test_bad_format_rejected(self, p9_comp):
        with pytest.raises(AcceleratorError):
            p9_comp.compress(b"x", fmt="lz4")

    def test_block_splitting(self, text_20k):
        comp = NxCompressor(POWER9.engine, block_bytes=4096)
        result = comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert len(result.block_types) >= len(text_20k) // 4096
        assert stdzlib.decompress(result.data, -15) == text_20k


class TestRatioOrdering:
    def test_dynamic_beats_fixed(self, p9_comp, text_20k):
        fixed = p9_comp.compress(text_20k, strategy=DhtStrategy.FIXED)
        dynamic = p9_comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert dynamic.ratio > fixed.ratio

    def test_canned_between_fixed_and_dynamic(self, p9_comp, text_20k):
        fixed = p9_comp.compress(text_20k, strategy=DhtStrategy.FIXED)
        canned = p9_comp.compress(text_20k, strategy=DhtStrategy.CANNED)
        dynamic = p9_comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert fixed.ratio <= canned.ratio * 1.02
        assert canned.ratio <= dynamic.ratio * 1.001

    def test_auto_at_least_as_good_as_components(self, p9_comp,
                                                 payload_suite):
        for name, data in payload_suite.items():
            if not data:
                continue
            auto = p9_comp.compress(data, strategy=DhtStrategy.AUTO)
            fixed = p9_comp.compress(data, strategy=DhtStrategy.FIXED)
            assert len(auto.data) <= len(fixed.data) * 1.02, name

    def test_nx_close_to_zlib6(self, text_20k):
        """The headline ratio claim: within ~12% of software zlib -6
        even on lazy-matching-friendly text (the corpus average is much
        closer; see the E3 bench)."""
        nx = NxCompressor(POWER9.engine).compress(
            text_20k, strategy=DhtStrategy.DYNAMIC)
        sw = deflate(text_20k, level=6)
        assert nx.ratio > 0.88 * sw.ratio

    def test_nx_beats_zlib1_on_structured(self, json_20k):
        nx = NxCompressor(POWER9.engine).compress(
            json_20k, strategy=DhtStrategy.DYNAMIC)
        sw1 = deflate(json_20k, level=1)
        assert nx.ratio > 0.95 * sw1.ratio

    def test_incompressible_does_not_explode(self, p9_comp, random_8k):
        result = p9_comp.compress(random_8k, strategy=DhtStrategy.AUTO)
        assert len(result.data) <= len(random_8k) + 64


class TestTiming:
    def test_cycle_breakdown_sums(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        c = result.cycles
        assert c.total == (c.pipeline_fill + c.scan + c.bank_stalls
                           + c.dht_generation + c.encode_exposed)

    def test_fixed_has_no_dht_cycles(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, strategy=DhtStrategy.FIXED)
        assert result.cycles.dht_generation == 0

    def test_dynamic_pays_dht_cycles(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert result.cycles.dht_generation > 0

    def test_canned_cheaper_than_dynamic(self, p9_comp, text_20k):
        canned = p9_comp.compress(text_20k, strategy=DhtStrategy.CANNED)
        dynamic = p9_comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert (canned.cycles.dht_generation
                < dynamic.cycles.dht_generation)

    def test_throughput_in_calibrated_band(self, text_20k):
        """P9 rate on a small (20 KB) buffer: DHT cost amortizes poorly,
        so the band is wider than the large-buffer calibration point."""
        result = NxCompressor(POWER9.engine).compress(
            text_20k, strategy=DhtStrategy.DYNAMIC)
        assert 4.5 < result.throughput_gbps < 8.5

    def test_z15_roughly_doubles_p9(self, text_20k):
        p9 = NxCompressor(POWER9.engine).compress(
            text_20k, strategy=DhtStrategy.DYNAMIC)
        z15 = NxCompressor(Z15.engine).compress(
            text_20k, strategy=DhtStrategy.DYNAMIC)
        assert 1.5 < z15.throughput_gbps / p9.throughput_gbps < 2.3

    def test_seconds_consistent_with_cycles(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k)
        expected = result.cycles.total / (POWER9.engine.clock_ghz * 1e9)
        assert result.seconds == pytest.approx(expected)

    def test_empty_input_costs_only_fill(self, p9_comp):
        result = p9_comp.compress(b"", strategy=DhtStrategy.FIXED)
        assert result.cycles.scan == 0
        assert stdzlib.decompress(result.data, -15) == b""


class TestDhtSources:
    def test_sources_reported_per_block(self, text_20k):
        comp = NxCompressor(POWER9.engine, block_bytes=8192)
        result = comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        assert len(result.dht_sources) == len(result.block_types)
        assert all(src == "dynamic" for src in result.dht_sources)

    def test_canned_source_named(self, p9_comp, text_20k):
        result = p9_comp.compress(text_20k, strategy=DhtStrategy.CANNED)
        assert result.dht_sources[0] in ("text", "binary", "structured", "flat")
