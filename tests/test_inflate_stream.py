"""Incremental DEFLATE decoding: arbitrary chunk boundaries."""

import zlib as stdzlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.compress import deflate
from repro.deflate.inflate_stream import InflateStream, inflate_incremental
from repro.errors import DeflateError
from repro.workloads.generators import generate


def split_at(payload: bytes, cuts: list[int]) -> list[bytes]:
    chunks = []
    prev = 0
    for cut in sorted(set(c % (len(payload) + 1) for c in cuts)):
        chunks.append(payload[prev:cut])
        prev = cut
    chunks.append(payload[prev:])
    return chunks


class TestBasics:
    def test_single_feed(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        out = stream.feed(payload) + stream.finish()
        assert out == text_20k

    def test_byte_at_a_time(self):
        data = generate("json_records", 4000, seed=1)
        payload = deflate(data, 6).data
        stream = InflateStream()
        out = bytearray()
        for byte in payload:
            out += stream.feed(bytes([byte]))
        out += stream.finish()
        assert bytes(out) == data

    def test_mid_header_split(self, text_20k):
        payload = deflate(text_20k, 6).data
        assert inflate_incremental([payload[:1], payload[1:3],
                                    payload[3:]]) == text_20k

    def test_stored_blocks(self, text_20k):
        payload = deflate(text_20k, 0).data
        assert inflate_incremental(
            split_at(payload, [3, 5, 100, 70000])) == text_20k

    def test_multiblock_stream(self, text_20k):
        payload = deflate(text_20k, 6, block_tokens=256).data
        assert inflate_incremental(
            split_at(payload, list(range(100, 6000, 700)))) == text_20k

    def test_stdlib_payload(self, json_20k):
        payload = stdzlib.compress(json_20k, 9)[2:-4]
        assert inflate_incremental(
            split_at(payload, [10, 500, 900])) == json_20k

    def test_output_streams_before_finish(self, text_20k):
        """Plaintext becomes available as input arrives, not at finish."""
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        early = stream.feed(payload[: len(payload) // 2])
        assert len(early) > 0
        rest = stream.feed(payload[len(payload) // 2:]) + stream.finish()
        assert early + rest == text_20k


class TestWindowAndDict:
    def test_large_output_window_trimming(self):
        data = generate("log_lines", 150000, seed=2)
        payload = deflate(data, 6).data
        chunks = [payload[i:i + 512]
                  for i in range(0, len(payload), 512)]
        assert inflate_incremental(chunks) == data

    def test_history_dictionary(self, json_20k):
        hist = json_20k[:8000]
        rest = json_20k[8000:]
        payload = deflate(rest, 6, history=hist).data
        assert inflate_incremental([payload[:40], payload[40:]],
                                   history=hist) == rest

    def test_max_output_enforced(self):
        payload = deflate(bytes(100000), 6).data
        stream = InflateStream(max_output=1000)
        with pytest.raises(DeflateError):
            stream.feed(payload)
            stream.finish()


class TestProtocol:
    def test_finished_flag(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        stream.feed(payload)
        stream.finish()
        assert stream.finished

    def test_unused_bytes(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        stream.feed(payload + b"\x01\x02\x03")
        stream.finish()
        assert stream.unused_bytes() == b"\x01\x02\x03"

    def test_truncated_raises_on_finish(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        stream.feed(payload[: len(payload) // 2])
        with pytest.raises(DeflateError):
            stream.finish()

    def test_feed_after_done_rejected(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        stream.feed(payload)
        stream.finish()
        with pytest.raises(DeflateError):
            stream.feed(b"more")

    def test_corrupt_stream_raises(self, text_20k):
        payload = bytearray(deflate(text_20k, 6).data)
        payload[0] |= 0x06  # force reserved btype
        stream = InflateStream()
        with pytest.raises(DeflateError):
            stream.feed(bytes(payload))
            stream.finish()


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=4000), st.lists(st.integers(min_value=0),
                                          max_size=12),
       st.sampled_from([0, 1, 6, 9]))
def test_chunking_invariance_property(data, cuts, level):
    """Any chunking of any valid stream decodes to the same bytes."""
    payload = deflate(data, level).data
    assert inflate_incremental(split_at(payload, cuts)) == data


class TestBlockBoundaryCallback:
    """The seek-index contract: every boundary reports a resumable
    (bit offset, window, produced) triple."""

    def test_offsets_monotonic_and_final_flag(self, text_20k):
        payload = deflate(text_20k, 6, block_tokens=512).data
        events = []
        stream = InflateStream(
            on_block_boundary=lambda bit, fin: events.append((bit, fin)))
        stream.feed(payload)
        stream.finish()
        assert len(events) >= 2  # small blocks force several boundaries
        bits = [bit for bit, _ in events]
        assert bits == sorted(bits) and len(set(bits)) == len(bits)
        assert all(bit <= len(payload) * 8 for bit in bits)
        assert [fin for _, fin in events].count(True) == 1
        assert events[-1][1] is True

    def test_window_resumes_byte_identically(self, text_20k):
        payload = deflate(text_20k, 6, block_tokens=512).data
        snaps = []
        stream = InflateStream(
            on_block_boundary=lambda bit, fin: snaps.append(
                (bit, stream.window(), stream.produced)))
        out = stream.feed(payload) + stream.finish()
        assert out == text_20k
        bit, window, produced = snaps[len(snaps) // 2]
        assert window == text_20k[:produced][-32768:]
        # Resume a fresh decoder at the boundary with that window.
        resumed = InflateStream(history=window)
        rest = resumed.feed(_shift_bits(payload, bit)) \
            + resumed.finish()
        assert rest == text_20k[produced:]

    def test_callback_sees_state_at_boundary(self):
        data = generate("json_records", 30000, seed=21)
        payload = deflate(data, 0).data  # stored: many 65k-max blocks
        produced_at = []
        stream = InflateStream(
            on_block_boundary=lambda bit, fin: produced_at.append(
                stream.produced))
        stream.feed(payload)
        stream.finish()
        assert produced_at[-1] == len(data)
        assert produced_at == sorted(produced_at)

    def test_byte_at_a_time_same_boundaries(self, text_20k):
        payload = deflate(text_20k, 6, block_tokens=512).data
        whole, trickled = [], []
        s1 = InflateStream(
            on_block_boundary=lambda bit, fin: whole.append((bit, fin)))
        s1.feed(payload)
        s1.finish()
        s2 = InflateStream(
            on_block_boundary=lambda bit, fin: trickled.append(
                (bit, fin)))
        for i in range(0, len(payload), 7):
            s2.feed(payload[i:i + 7])
        s2.finish()
        assert trickled == whole  # compaction must not move offsets


def _shift_bits(payload: bytes, bit: int) -> bytes:
    """``payload`` re-aligned so absolute ``bit`` becomes bit 0."""
    if bit % 8 == 0:
        return payload[bit // 8:]
    shift = bit % 8
    body = payload[bit // 8:]
    out = bytearray()
    for i in range(len(body) - 1):
        out.append(((body[i] >> shift)
                    | (body[i + 1] << (8 - shift))) & 0xFF)
    out.append(body[-1] >> shift)
    return bytes(out)


class TestTrailingGarbage:
    def test_zero_while_decoding_and_exact_after(self, text_20k):
        payload = deflate(text_20k, 6).data
        stream = InflateStream()
        stream.feed(payload[:10])
        assert stream.trailing_garbage_bytes == 0
        stream.feed(payload[10:] + b"JUNKJUNK")
        stream.finish()
        assert stream.trailing_garbage_bytes == 8
        assert stream.unused_bytes() == b"JUNKJUNK"

    def test_clean_stream_has_none(self, json_20k):
        payload = deflate(json_20k, 6).data
        stream = InflateStream()
        stream.feed(payload)
        stream.finish()
        assert stream.trailing_garbage_bytes == 0
