"""Concurrency stress: exact accounting under a thread storm.

The pool and the metrics registry are shared, mutable, and hot — the
classic place for torn counters and inconsistent snapshots.  These
tests hammer one :class:`AcceleratorPool` and one
:class:`MetricsRegistry` from many threads and then demand *exact*
arithmetic: every counter equals the work actually submitted, byte
totals match to the byte, and snapshots taken mid-storm are internally
consistent (never e.g. more completions than dispatches).
"""

from __future__ import annotations

import gzip
import random
import threading

import pytest

from repro import obs
from repro.backend.pool import AcceleratorPool
from repro.obs.metrics import MetricsRegistry
from repro.service import CompressionService, QosClass, QosPolicy
from repro.workloads.generators import generate

THREADS = 8
OPS_PER_THREAD = 24


@pytest.fixture()
def telemetry():
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


class TestPoolStorm:
    def test_exact_counters_after_storm(self, telemetry):
        data = generate("json_records", 8192, seed=41)
        payload = gzip.compress(data, 6)
        expected_in = 0
        lock = threading.Lock()
        failures: list[Exception] = []
        with AcceleratorPool(chips=2, policy="round_robin",
                             backend="nx") as pool:
            def worker(worker_id: int) -> None:
                nonlocal expected_in
                rng = random.Random(worker_id)
                mine = 0
                try:
                    for i in range(OPS_PER_THREAD):
                        if rng.random() < 0.5:
                            out = pool.compress(data, fmt="gzip")
                            assert gzip.decompress(out.output) == data
                            mine += len(data)
                        else:
                            out = pool.decompress(payload, fmt="gzip")
                            assert out.output == data
                            mine += len(payload)
                except Exception as exc:  # surfaced after join
                    with lock:
                        failures.append(exc)
                    return
                with lock:
                    expected_in += mine

            threads = [threading.Thread(target=worker, args=(w,))
                       for w in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures[:3]

            stats = pool.stats()
            total = THREADS * OPS_PER_THREAD
            assert stats.requests == total
            assert sum(stats.dispatch_counts) + stats.software_jobs \
                == total
            assert stats.bytes_in == expected_in
            assert stats.in_flight == 0
            assert stats.rescues == 0

            counter = obs.registry().get("repro_pool_dispatch_total")
            assert sum(v["value"] for v in
                       counter.snapshot_values()) == total

    def test_mid_storm_snapshots_consistent(self):
        data = generate("markov_text", 16384, seed=42)
        stop = threading.Event()
        violations: list[str] = []
        with AcceleratorPool(chips=2, policy="least_loaded",
                             backend="nx") as pool:
            def sampler() -> None:
                last_requests = 0
                last_bytes = 0
                while not stop.is_set():
                    snap = pool.stats()
                    dispatched = (sum(snap.dispatch_counts)
                                  + snap.software_jobs)
                    if snap.requests > dispatched:
                        violations.append(
                            f"{snap.requests} done > "
                            f"{dispatched} dispatched")
                    if snap.requests < last_requests:
                        violations.append("requests went backwards")
                    if snap.bytes_in < last_bytes:
                        violations.append("bytes_in went backwards")
                    if snap.in_flight < 0:
                        violations.append("negative in_flight")
                    last_requests = snap.requests
                    last_bytes = snap.bytes_in

            def worker() -> None:
                for _ in range(OPS_PER_THREAD):
                    out = pool.compress(data, fmt="gzip")
                    assert gzip.decompress(out.output) == data

            sampling = threading.Thread(target=sampler)
            workers = [threading.Thread(target=worker)
                       for _ in range(THREADS)]
            sampling.start()
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
            stop.set()
            sampling.join()
            assert not violations, violations[:5]
            assert pool.stats().requests == THREADS * OPS_PER_THREAD

    def test_routing_spreads_across_chips(self):
        data = generate("json_records", 32768, seed=43)
        with AcceleratorPool(chips=4, policy="round_robin",
                             backend="nx") as pool:
            threads = [threading.Thread(
                target=lambda: [pool.compress(data) for _ in range(10)])
                for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = pool.stats()
            assert sum(stats.dispatch_counts) == 40
            # Round robin under concurrency still lands on every chip.
            assert all(count > 0 for count in stats.dispatch_counts)


class TestRegistryStorm:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        registry.enabled = True
        counter = registry.counter("storm_total", "test")
        hist = registry.histogram("storm_seconds", "test")

        def worker(worker_id: int) -> None:
            for i in range(1000):
                counter.inc(1, worker=str(worker_id % 4))
                hist.observe(i * 1e-6)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(v["value"] for v in
                   counter.snapshot_values()) == THREADS * 1000
        assert hist.state().count == THREADS * 1000

    def test_service_counters_sum_to_submitted(self, telemetry):
        policy = QosPolicy((
            QosClass("a", fifo="high", rank=0, queue_limit=10_000,
                     max_batch=4),
            QosClass("b", fifo="normal", rank=1, queue_limit=10_000,
                     max_batch=4),
        ))
        data = generate("json_records", 4096, seed=44)
        with CompressionService(chips=2, qos=policy) as svc:
            def worker(worker_id: int) -> None:
                qos = "a" if worker_id % 2 == 0 else "b"
                for _ in range(OPS_PER_THREAD):
                    result = svc.request("compress", data, qos=qos,
                                         timeout_s=60)
                    assert gzip.decompress(result.output) == data

            threads = [threading.Thread(target=worker, args=(w,))
                       for w in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = svc.stats()
            total = THREADS * OPS_PER_THREAD
            assert stats.accepted == total
            assert stats.completed == total
            assert stats.rejected == 0
            assert stats.failed == 0
            assert stats.bytes_in == total * len(data)
            per_class_total = sum(c["completed"]
                                  for c in stats.per_class.values())
            assert per_class_total == total

        counter = obs.registry().get("repro_service_requests_total")
        assert sum(v["value"] for v in
                   counter.snapshot_values()) == total
