"""Job engine: end-to-end CRB execution, faults, overflow, counters."""

import zlib as stdzlib

import pytest

from repro.nx.engine import NxEngine
from repro.nx.params import POWER9
from repro.sysstack.crb import CcCode, Crb, Csb, FunctionCode, Op
from repro.sysstack.dde import Dde
from repro.sysstack.mmu import AddressSpace


@pytest.fixture
def space():
    return AddressSpace()


def make_job(space, data, op=Op.COMPRESS, target_len=None, strategy="auto",
             fmt="raw"):
    src = space.alloc(max(1, len(data)))
    space.write(src, data)
    target_len = target_len or max(4096, len(data) * 2)
    dst = space.alloc(target_len)
    csb = space.alloc(64)
    return Crb(function=FunctionCode(op=op, strategy=strategy, fmt=fmt),
               source=Dde.direct(src, len(data)),
               target=Dde.direct(dst, target_len),
               csb_address=csb)


class TestCompressJob:
    def test_success_path(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.SUCCESS
        payload = space.read(crb.target.address,
                             outcome.csb.target_written)
        assert stdzlib.decompress(payload, -15) == text_20k

    def test_csb_written_to_memory(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        engine.execute(crb, space)
        csb = Csb.unpack(space.read(crb.csb_address, 16))
        assert csb.valid
        assert csb.cc is CcCode.SUCCESS
        assert csb.processed_bytes == len(text_20k)

    def test_gather_source(self, space, text_20k):
        engine = NxEngine(POWER9)
        half = len(text_20k) // 2
        a = space.alloc(half)
        b = space.alloc(len(text_20k) - half)
        space.write(a, text_20k[:half])
        space.write(b, text_20k[half:])
        dst = space.alloc(len(text_20k) * 2)
        csb = space.alloc(64)
        crb = Crb(function=FunctionCode(op=Op.COMPRESS),
                  source=Dde.gather([(a, half),
                                     (b, len(text_20k) - half)]),
                  target=Dde.direct(dst, len(text_20k) * 2),
                  csb_address=csb)
        outcome = engine.execute(crb, space)
        payload = space.read(dst, outcome.csb.target_written)
        assert stdzlib.decompress(payload, -15) == text_20k

    def test_scatter_target(self, space, text_20k):
        engine = NxEngine(POWER9)
        t1 = space.alloc(512)
        t2 = space.alloc(len(text_20k) * 2)
        csb = space.alloc(64)
        src = space.alloc(len(text_20k))
        space.write(src, text_20k)
        crb = Crb(function=FunctionCode(op=Op.COMPRESS),
                  source=Dde.direct(src, len(text_20k)),
                  target=Dde.gather([(t1, 512),
                                     (t2, len(text_20k) * 2)]),
                  csb_address=csb)
        outcome = engine.execute(crb, space)
        written = outcome.csb.target_written
        payload = space.read(t1, min(512, written))
        if written > 512:
            payload += space.read(t2, written - 512)
        assert stdzlib.decompress(payload, -15) == text_20k

    def test_busy_time_positive(self, space, text_20k):
        engine = NxEngine(POWER9)
        outcome = engine.execute(make_job(space, text_20k), space)
        assert outcome.busy_seconds > 0


class TestDecompressJob:
    def test_roundtrip_through_engine(self, space, json_20k):
        engine = NxEngine(POWER9)
        c_crb = make_job(space, json_20k)
        c_out = engine.execute(c_crb, space)
        payload = space.read(c_crb.target.address,
                             c_out.csb.target_written)
        d_crb = make_job(space, payload, op=Op.DECOMPRESS,
                         target_len=len(json_20k) * 2)
        d_out = engine.execute(d_crb, space)
        assert d_out.csb.cc is CcCode.SUCCESS
        restored = space.read(d_crb.target.address,
                              d_out.csb.target_written)
        assert restored == json_20k


class TestFaults:
    def test_source_fault_reports_address(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        space.page_out(crb.source.address)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.TRANSLATION
        assert outcome.csb.fault_address // space.page_size == \
            crb.source.address // space.page_size

    def test_target_fault(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        space.page_out(crb.target.address)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.TRANSLATION

    def test_fault_then_touch_then_success(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        space.page_out(crb.source.address)
        first = engine.execute(crb, space)
        assert first.csb.cc is CcCode.TRANSLATION
        space.touch(first.csb.fault_address)
        second = engine.execute(crb, space)
        assert second.csb.cc is CcCode.SUCCESS

    def test_fault_abort_is_fast(self, space, text_20k):
        engine = NxEngine(POWER9)
        good = make_job(space, text_20k)
        ok = engine.execute(good, space)
        bad = make_job(space, text_20k)
        space.page_out(bad.source.address)
        fail = engine.execute(bad, space)
        assert fail.busy_seconds < ok.busy_seconds


class TestOverflow:
    def test_target_space_cc(self, space, random_8k):
        engine = NxEngine(POWER9)
        crb = make_job(space, random_8k, target_len=128)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.TARGET_SPACE


class TestCounters:
    def test_counters_accumulate(self, space, text_20k):
        engine = NxEngine(POWER9)
        engine.execute(make_job(space, text_20k), space)
        engine.execute(make_job(space, text_20k), space)
        assert engine.counters.jobs == 2
        assert engine.counters.completed == 2
        assert engine.counters.bytes_in == 2 * len(text_20k)
        assert engine.counters.busy_seconds > 0

    def test_fault_counted(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        space.page_out(crb.source.address)
        engine.execute(crb, space)
        assert engine.counters.faulted == 1
        assert engine.counters.completed == 0


class TestValidation:
    def test_missing_csb_rejected(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        crb.csb_address = 0
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.INVALID_CRB

    def test_zero_target_rejected(self, space, text_20k):
        from repro.sysstack.dde import Dde

        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        crb.target = Dde.direct(crb.target.address, 0)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.INVALID_CRB

    def test_empty_decompress_source_rejected(self, space):
        engine = NxEngine(POWER9)
        crb = make_job(space, b"", op=Op.DECOMPRESS)
        outcome = engine.execute(crb, space)
        assert outcome.csb.cc is CcCode.DATA_LENGTH

    def test_rejected_job_writes_csb(self, space, text_20k):
        engine = NxEngine(POWER9)
        crb = make_job(space, text_20k)
        crb.target = __import__(
            "repro.sysstack.dde", fromlist=["Dde"]).Dde.direct(
                crb.target.address, 0)
        engine.execute(crb, space)
        csb = Csb.unpack(space.read(crb.csb_address, 16))
        assert csb.valid
        assert csb.cc is CcCode.INVALID_CRB
