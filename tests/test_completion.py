"""Completion-notification model: mode trade-offs and crossovers."""

import pytest

from repro.nx.params import POWER9, Z15
from repro.perf.completion import (
    CompletionMode,
    CompletionModel,
    POLL_DETECT_SECONDS,
)


@pytest.fixture(scope="module")
def model():
    return CompletionModel(POWER9)


class TestCosts:
    def test_all_modes_reported(self, model):
        costs = model.costs(65536)
        assert set(costs) == set(CompletionMode)

    def test_poll_has_lowest_latency(self, model):
        costs = model.costs(65536)
        assert (costs[CompletionMode.POLL].latency_seconds
                <= costs[CompletionMode.WAIT].latency_seconds
                <= costs[CompletionMode.INTERRUPT].latency_seconds)

    def test_interrupt_burns_least_cpu_on_large_jobs(self, model):
        costs = model.costs(16 << 20)
        assert (costs[CompletionMode.INTERRUPT].cpu_burn_seconds
                < costs[CompletionMode.WAIT].cpu_burn_seconds
                < costs[CompletionMode.POLL].cpu_burn_seconds)

    def test_poll_burn_equals_latency(self, model):
        cost = model.costs(4096)[CompletionMode.POLL]
        assert cost.cpu_burn_seconds == pytest.approx(
            cost.latency_seconds)

    def test_interrupt_burn_independent_of_size(self, model):
        small = model.costs(4096)[CompletionMode.INTERRUPT]
        large = model.costs(16 << 20)[CompletionMode.INTERRUPT]
        assert small.cpu_burn_seconds == pytest.approx(
            large.cpu_burn_seconds)


class TestPolicy:
    def test_latency_critical_small_jobs_prefer_poll(self, model):
        assert model.best_mode(1024,
                               cpu_weight=0.0) is CompletionMode.POLL

    def test_wait_wins_small_jobs_at_equal_weight(self, model):
        """The wait facility is poll-latency at near-interrupt burn."""
        assert model.best_mode(4096) is CompletionMode.WAIT

    def test_large_jobs_prefer_interrupt(self, model):
        assert model.best_mode(64 << 20) is CompletionMode.INTERRUPT

    def test_crossover_monotone_in_cpu_weight(self, model):
        """Pricier CPU pushes the wait->interrupt switch to smaller
        jobs (the wait hold burns a fraction of the service time)."""
        equal = model.crossover_bytes(cpu_weight=1.0)
        dear_cpu = model.crossover_bytes(cpu_weight=10.0)
        assert dear_cpu <= equal

    def test_latency_only_weight_prefers_poll_everywhere(self, model):
        assert model.best_mode(64 << 20,
                               cpu_weight=0.0) is CompletionMode.POLL

    def test_weighted_cost_formula(self, model):
        cost = model.costs(65536)[CompletionMode.WAIT]
        assert cost.weighted_cost(2.0) == pytest.approx(
            cost.latency_seconds + 2.0 * cost.cpu_burn_seconds)

    def test_z15_sync_path_still_modelable(self):
        """The model runs for z15 too (its DFLTCC path is effectively
        'wait' with tiny constants), giving comparable numbers."""
        model = CompletionModel(Z15)
        costs = model.costs(65536)
        assert costs[CompletionMode.POLL].latency_seconds > 0

    def test_detection_constant_sane(self):
        assert POLL_DETECT_SECONDS < 1e-6
