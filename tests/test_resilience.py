"""Resilience: fault injection, bounded retries, breakers, verify.

The chaos regression suite: every injected fault class must end in
byte-exact results (or a clean, typed failure) — never a hang, never
silent corruption.
"""

import zlib as stdzlib

import pytest

from repro import obs
from repro.backend.pool import AcceleratorPool
from repro.errors import (AcceleratorError, ChipUnavailable, ConfigError,
                          DeadlineExceeded, IntegrityError, JobError,
                          ReproError)
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.resilience.chaos import default_plans, run_campaign, run_scenario
from repro.resilience.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.resilience.health import (BreakerState, CircuitBreaker,
                                     HealthConfig, HealthTracker)
from repro.resilience.policy import RetryPolicy, check_deadline
from repro.resilience.verify import (software_compress, verify_payload)
from repro.sysstack.crb import Op
from repro.sysstack.driver import AsyncNxDriver, NxDriver
from repro.sysstack.mmu import AddressSpace
from repro.workloads.generators import generate


def make_driver(plans=(), seed=0, max_retries=8, deadline_s=None,
                credits=None, cls=NxDriver):
    space = AddressSpace()
    accel = NxAccelerator(POWER9)
    injector = FaultInjector(list(plans), seed=seed).install(accel)
    driver = cls(accel, space, max_retries=max_retries,
                 deadline_s=deadline_s)
    driver.open(credits=credits)
    return driver, injector


@pytest.fixture()
def telemetry():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for exc_type in (DeadlineExceeded, ChipUnavailable,
                         IntegrityError):
            assert issubclass(exc_type, ReproError)

    def test_deadline_carries_budget(self):
        exc = DeadlineExceeded("late", elapsed_s=2.0, deadline_s=1.0)
        assert exc.elapsed_s == 2.0 and exc.deadline_s == 1.0
        assert isinstance(exc, AcceleratorError)

    def test_chip_unavailable_carries_chip(self):
        assert ChipUnavailable("down", chip=3).chip == 3


class TestRetryPolicy:
    def test_allows_counts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert [policy.allows(i) for i in range(4)] == \
            [True, True, True, False]

    def test_from_max_retries_adapter(self):
        assert RetryPolicy.from_max_retries(8).max_attempts == 9

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(jitter_fraction=0.0)
        assert policy.backoff_s(1) > policy.backoff_s(0)
        assert policy.backoff_s(60) == policy.max_backoff_s
        # Deep paste-retry counts must not overflow the float power.
        assert policy.backoff_s(5000) == policy.max_backoff_s

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(seed=4).backoff_s(3, token=9)
        b = RetryPolicy(seed=4).backoff_s(3, token=9)
        c = RetryPolicy(seed=5).backoff_s(3, token=9)
        assert a == b
        assert a != c
        base = RetryPolicy(jitter_fraction=0.0).backoff_s(3)
        assert abs(a - base) <= 0.25 * base

    def test_check_deadline(self):
        check_deadline(0.5, None, "never raises without a deadline")
        check_deadline(0.5, 1.0, "under budget")
        with pytest.raises(DeadlineExceeded) as info:
            check_deadline(2.0, 1.0, "paste")
        assert "paste" in str(info.value)


class TestFaultInjector:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan("gremlin", probability=0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan("engine_hang", probability=1.5)

    def test_unfireable_plan_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan("engine_hang")  # no at_job, no probability

    def test_install_sets_both_hooks(self):
        accel = NxAccelerator(POWER9)
        injector = FaultInjector(
            [FaultPlan("engine_hang", at_job=1)]).install(accel)
        assert accel.chaos is injector
        assert accel.vas.chaos is injector

    def test_at_job_fires_exactly_once(self):
        injector = FaultInjector([FaultPlan("engine_hang", at_job=2)])
        actions = [injector.on_job_start(None) for _ in range(5)]
        assert actions == [None, "hang", None, None, None]
        assert injector.fired == {"engine_hang": 1}

    def test_same_seed_same_timeline(self):
        plans = [FaultPlan("engine_hang", probability=0.3),
                 FaultPlan("credit_leak", probability=0.3)]
        runs = []
        for _ in range(2):
            injector = FaultInjector(plans, seed=11, chip=1)
            actions = [injector.on_job_start(None) for _ in range(40)]
            leaks = [injector.on_credit_return(1) for _ in range(40)]
            runs.append((actions, leaks, dict(injector.fired)))
        assert runs[0] == runs[1]

    def test_every_kind_is_declarable(self):
        for kind in FAULT_KINDS:
            FaultPlan(kind, probability=0.1)


class TestDriverResilience:
    def test_hang_recovered_and_retried(self, text_20k):
        driver, injector = make_driver(
            [FaultPlan("engine_hang", at_job=1)])
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k
        assert result.stats.engine_hangs == 1
        assert not result.stats.fallback_to_software
        assert not driver.accelerator.hung  # credits reclaimed

    def test_spurious_cc_retried_to_success(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("spurious_cc", at_job=1)])
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k
        assert result.stats.spurious_ccs == 1

    def test_spurious_storm_falls_back_to_software(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("spurious_cc", probability=1.0,
                       max_fires=10_000)], max_retries=3)
        result = driver.run(Op.COMPRESS, text_20k)
        assert result.stats.fallback_to_software
        assert result.csb is None
        assert stdzlib.decompress(result.output, -15) == text_20k

    def test_permanent_cc_still_fails_fast(self):
        driver, _ = make_driver()
        with pytest.raises(JobError):
            driver.run(Op.DECOMPRESS_842, b"\xff" * 64)

    def test_credit_leak_bounds_paste_and_falls_back(self, text_20k):
        driver, injector = make_driver(
            [FaultPlan("credit_leak", probability=1.0, max_fires=1)],
            credits=1)
        first = driver.run(Op.COMPRESS, text_20k)  # completes, leaks
        assert not first.stats.fallback_to_software
        assert injector.fired["credit_leak"] == 1
        second = driver.run(Op.COMPRESS, text_20k)  # window is wedged
        assert second.stats.fallback_to_software
        assert second.stats.paste_rejections > 0
        assert stdzlib.decompress(second.output, -15) == text_20k
        driver.close()  # leaked credit must not wedge teardown

    def test_deadline_raises_while_retrying(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("spurious_cc", probability=1.0,
                       max_fires=10_000)])
        with pytest.raises(DeadlineExceeded) as info:
            driver.run(Op.COMPRESS, text_20k, deadline_s=1e-12)
        assert info.value.deadline_s == 1e-12

    def test_successful_job_ignores_deadline(self, text_20k):
        driver, _ = make_driver()
        result = driver.run(Op.COMPRESS, text_20k, deadline_s=1e-12)
        assert stdzlib.decompress(result.output, -15) == text_20k

    def test_engine_slow_inflates_elapsed(self, text_20k):
        fast, _ = make_driver()
        slow, _ = make_driver(
            [FaultPlan("engine_slow", probability=1.0, max_fires=1,
                       magnitude=1000.0)])
        t_fast = fast.run(Op.COMPRESS, text_20k).stats.elapsed_seconds
        t_slow = slow.run(Op.COMPRESS, text_20k).stats.elapsed_seconds
        assert t_slow > 10 * t_fast

    def test_corruption_detected_by_verify(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("corrupt_output", probability=1.0, max_fires=1)])
        result = driver.run(Op.COMPRESS, text_20k, fmt="gzip")
        assert not verify_payload(text_20k, result.output, "gzip")


class TestAsyncResilience:
    def test_bad_job_does_not_abandon_batch(self, text_20k):
        driver, _ = make_driver(cls=AsyncNxDriver)
        good = [driver.submit(Op.COMPRESS, text_20k) for _ in range(3)]
        bad = driver.submit(Op.DECOMPRESS_842, b"\xff" * 64)
        done = driver.wait_all()
        assert len(done) == 4
        assert bad.failed and isinstance(bad.error, JobError)
        assert bad.result is None
        for job in good:
            assert not job.failed
            assert stdzlib.decompress(job.result.output, -15) == text_20k

    def test_retry_exhaustion_resolves_in_software(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("spurious_cc", probability=1.0,
                       max_fires=10_000)], max_retries=2,
            cls=AsyncNxDriver)
        job = driver.submit(Op.COMPRESS, text_20k)
        driver.wait_all()
        assert job.done and not job.failed
        assert job.result.stats.fallback_to_software
        assert stdzlib.decompress(job.result.output, -15) == text_20k

    def test_async_deadline_fails_only_that_job(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("spurious_cc", probability=1.0,
                       max_fires=10_000)], cls=AsyncNxDriver)
        doomed = driver.submit(Op.COMPRESS, text_20k, deadline_s=1e-12)
        driver.wait_all()
        assert doomed.failed
        assert isinstance(doomed.error, DeadlineExceeded)

    def test_wait_all_reports_partial_and_stuck(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("engine_hang", at_job=2)], cls=AsyncNxDriver)
        ok = driver.submit(Op.COMPRESS, text_20k)
        hung = driver.submit(Op.COMPRESS, text_20k)
        with pytest.raises(JobError) as info:
            driver.wait_all(max_polls=5)
        assert [j.sequence for j in info.value.partial] == [ok.sequence]
        assert info.value.stuck == [hung.sequence]

    def test_cancel_pending_reclaims_credits(self, text_20k):
        driver, _ = make_driver(
            [FaultPlan("engine_hang", at_job=1)], credits=2,
            cls=AsyncNxDriver)
        hung = driver.submit(Op.COMPRESS, text_20k)
        with pytest.raises(JobError):
            driver.wait_all(max_polls=3)
        cancelled = driver.cancel_pending()
        assert [j.sequence for j in cancelled] == [hung.sequence]
        assert hung.failed and driver.in_flight == 0
        window = driver.accelerator.vas.windows[driver._window_id]
        assert window.outstanding == 0
        # The driver is usable again after the engine reset.
        job = driver.submit(Op.COMPRESS, text_20k)
        driver.wait_all()
        assert stdzlib.decompress(job.result.output, -15) == text_20k

    def test_submit_time_completions_not_dropped(self):
        # Credit backpressure makes submit poll internally; completions
        # drained there must still be handed back to the caller.
        driver, _ = make_driver(cls=AsyncNxDriver, credits=2)
        payloads = [generate("json_records", 6000, seed=i)
                    for i in range(8)]
        jobs = [driver.submit(Op.COMPRESS, p) for p in payloads]
        done = driver.wait_all()
        assert len(done) == len(jobs)
        for job, payload in zip(jobs, payloads):
            assert stdzlib.decompress(job.result.output, -15) == payload


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(chip=0, config=HealthConfig(
            failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.available

    def test_success_resets_failure_run(self):
        breaker = CircuitBreaker(chip=0, config=HealthConfig(
            failure_threshold=2))
        breaker.record_failure(0)
        breaker.record_success(0)
        breaker.record_failure(0)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_then_probes_close(self):
        config = HealthConfig(failure_threshold=1, cooldown_routes=4,
                              probe_successes=2)
        breaker = CircuitBreaker(chip=0, config=config)
        breaker.record_failure(tick=10)
        assert breaker.state is BreakerState.OPEN
        breaker.tick(12)
        assert breaker.state is BreakerState.OPEN
        breaker.tick(14)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(14)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(14)
        assert breaker.state is BreakerState.CLOSED
        assert [name for name, _ in breaker.transitions] == \
            ["OPEN", "HALF_OPEN", "CLOSED"]

    def test_half_open_failure_reopens(self):
        config = HealthConfig(failure_threshold=1, cooldown_routes=1)
        breaker = CircuitBreaker(chip=0, config=config)
        breaker.record_failure(0)
        breaker.tick(2)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure(2)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2

    def test_tracker_excludes_open_chips(self):
        tracker = HealthTracker(3, HealthConfig(failure_threshold=1))
        tracker.record_failure(1)
        assert tracker.available_chips() == [0, 2]
        assert tracker.total_opens() == 1

    def test_score_decays_on_failure(self):
        tracker = HealthTracker(1)
        for _ in range(5):
            tracker.record_failure(0)
        assert tracker.scores()[0] < 0.5


class TestPoolHealth:
    def test_dead_chip_quarantined_but_bytes_correct(self, text_20k):
        pool = AcceleratorPool(
            POWER9, chips=2, backend="nx",
            health=HealthConfig(failure_threshold=2,
                                cooldown_routes=10_000))
        FaultInjector([FaultPlan("chip_death", at_job=1)]).install(
            pool.backend_for(0).accelerator)
        for _ in range(10):
            result = pool.compress(text_20k, fmt="gzip")
            assert verify_payload(text_20k, result.output, "gzip")
        stats = pool.stats()
        assert stats.breaker_opens >= 1
        assert stats.breaker_states[0] == "OPEN"
        assert pool.health.available_chips() == [1]
        # A quarantined chip is never routed to.
        assert all(pool.route(len(text_20k)) != 0 for _ in range(8))
        pool.close()

    def test_all_dead_without_rescue_raises(self, text_20k):
        pool = AcceleratorPool(
            POWER9, chips=1, backend="nx",
            health=HealthConfig(failure_threshold=1,
                                cooldown_routes=10_000),
            allow_software_rescue=False)
        FaultInjector([FaultPlan("chip_death", at_job=1)]).install(
            pool.backend_for(0).accelerator)
        with pytest.raises(ChipUnavailable):
            for _ in range(5):
                pool.compress(text_20k)
        pool.close()

    def test_all_dead_with_rescue_routes_to_software(self, text_20k):
        pool = AcceleratorPool(
            POWER9, chips=1, backend="nx",
            health=HealthConfig(failure_threshold=1,
                                cooldown_routes=10_000))
        FaultInjector([FaultPlan("chip_death", at_job=1)]).install(
            pool.backend_for(0).accelerator)
        for _ in range(5):
            result = pool.compress(text_20k, fmt="gzip")
            assert verify_payload(text_20k, result.output, "gzip")
        assert pool.software_jobs > 0
        pool.close()

    def test_breaker_recovers_after_chip_resurrects(self, text_20k):
        pool = AcceleratorPool(
            POWER9, chips=1, backend="nx",
            health=HealthConfig(failure_threshold=2, cooldown_routes=3,
                                probe_successes=1))
        FaultInjector(
            [FaultPlan("chip_death", at_job=1,
                       recover_at_job=30)]).install(
            pool.backend_for(0).accelerator)
        for _ in range(40):
            result = pool.compress(text_20k, fmt="gzip")
            assert verify_payload(text_20k, result.output, "gzip")
        log = [name for name, _ in pool.health.transition_log()[0]]
        assert "OPEN" in log
        assert log[-1] == "CLOSED"
        assert pool.stats().breaker_states[0] == "CLOSED"
        pool.close()

    def test_verify_rescues_corrupted_output(self, text_20k):
        pool = AcceleratorPool(POWER9, chips=1, backend="nx",
                               verify=True)
        FaultInjector(
            [FaultPlan("corrupt_output", probability=1.0,
                       max_fires=3)]).install(
            pool.backend_for(0).accelerator)
        for _ in range(5):
            result = pool.compress(text_20k, fmt="gzip")
            assert verify_payload(text_20k, result.output, "gzip")
        stats = pool.stats()
        assert stats.verify_failures == 3
        assert stats.rescues >= 3
        pool.close()

    def test_async_pool_failure_rescued(self, text_20k):
        pool = AcceleratorPool(POWER9, chips=2, backend="nx")
        FaultInjector(
            [FaultPlan("spurious_cc", probability=1.0,
                       max_fires=10_000)]).install(
            pool.backend_for(0).accelerator)
        jobs = [pool.submit_compress(text_20k, fmt="gzip")
                for _ in range(6)]
        pool.wait_all()
        for job in jobs:
            assert job.result is not None
            assert verify_payload(text_20k, job.result.output, "gzip")
        pool.close()


class TestVerify:
    def test_round_trip_passes(self, text_20k):
        payload, _ = software_compress(text_20k, fmt="gzip")
        assert verify_payload(text_20k, payload, "gzip")

    def test_corrupted_payload_fails(self, text_20k):
        payload, _ = software_compress(text_20k, fmt="gzip")
        bad = bytes([payload[0] ^ 0xA5]) + payload[1:]
        assert not verify_payload(text_20k, bad, "gzip")

    @pytest.mark.parametrize("fmt", ["raw", "zlib", "gzip", "842"])
    def test_software_compress_round_trips(self, fmt, json_20k):
        payload, seconds = software_compress(json_20k, fmt=fmt,
                                             machine=POWER9)
        assert verify_payload(json_20k, payload, fmt)
        assert seconds > 0.0

    def test_api_verify_repairs(self, telemetry, text_20k):
        from repro.core.api import NxGzip

        with NxGzip(POWER9, verify=True) as session:
            FaultInjector(
                [FaultPlan("corrupt_output", probability=1.0,
                           max_fires=1)]).install(session.accelerator)
            buf = session.compress(text_20k, fmt="gzip")
            assert verify_payload(text_20k, buf.data, "gzip")
            assert session.verify_failures == 1
        counter = telemetry.registry().get(
            "repro_resilience_verify_mismatch_total")
        assert counter is not None
        assert counter.value(backend="nx", fmt="gzip") == 1


class TestChaosCampaign:
    def test_campaign_survives_every_plan(self):
        report = run_campaign(seed=7, jobs=30, chips=2, max_size=2048)
        names = {s.name for s in report.scenarios}
        assert names == set(default_plans(30))
        assert report.survived
        for scenario in report.scenarios:
            assert scenario.wrong_bytes == 0, scenario.name
        assert report.total_faults > 0
        assert "SURVIVED" in report.render()

    def test_campaign_is_deterministic(self):
        a = run_scenario("combined", default_plans(20)["combined"],
                         seed=3, jobs=20, chips=2, max_size=1024)
        b = run_scenario("combined", default_plans(20)["combined"],
                         seed=3, jobs=20, chips=2, max_size=1024)
        assert a.faults_injected == b.faults_injected
        assert a.wrong_bytes == b.wrong_bytes == 0
        assert a.modelled_seconds == b.modelled_seconds

    def test_breaker_transitions_land_in_metrics(self, telemetry):
        run_scenario("chip_death", default_plans(30)["chip_death"],
                     seed=7, jobs=30, chips=2, max_size=1024)
        counter = telemetry.registry().get(
            "repro_resilience_breaker_transitions_total")
        assert counter is not None
        assert counter.value(chip="0", to="OPEN") >= 1
        injected = telemetry.registry().get(
            "repro_resilience_faults_injected_total")
        assert injected.value(kind="chip_death", chip="0") == 1


class TestCLI:
    def test_chaos_command_survives(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--seed", "7", "--jobs", "15",
                     "--scenario", "combined"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SURVIVED" in out

    def test_chaos_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--scenario", "nope"]) == 2

    def test_compress_verify_and_deadline_flags(self, tmp_path, capsys,
                                                text_20k):
        from repro.cli import main

        src = tmp_path / "input.bin"
        src.write_bytes(text_20k)
        code = main(["compress", str(src), "--verify",
                     "--deadline-ms", "1000"])
        assert code == 0
        out = tmp_path / "input.bin.gz"
        import gzip as stdgzip

        assert stdgzip.decompress(out.read_bytes()) == text_20k
