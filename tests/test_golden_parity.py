"""Byte-level parity against recorded golden DEFLATE streams.

``tests/data/golden_deflate.json`` (written by ``tools/record_goldens.py``)
pins the SHA-256 of every emitted bitstream plus every ``MatchStats`` and
``InflateStats`` field for a grid of payloads, levels, strategies, and
streaming modes.  The hot-path kernels (batched bit I/O, flat-table
inflate, slice-based matcher, merged-table emitter) are rewrites of the
reference code paths; this suite is what makes "rewrite" mean "same
bytes, same probe counts" rather than "roughly equivalent".
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate_with_stats
from repro.workloads.generators import generate

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_deflate.json"


def _payloads() -> dict[str, bytes]:
    return {
        "empty": b"",
        "one": b"x",
        "tiny": b"abcabcabcabc",
        "zeros": bytes(4096),
        "text": generate("markov_text", 20000, seed=11),
        "json": generate("json_records", 20000, seed=12),
        "random": generate("random_bytes", 8192, seed=13),
        "binary": generate("binary_executable", 20000, seed=14),
        "logs": generate("log_lines", 16384, seed=77),
        "dna": generate("dna_sequence", 8192, seed=78),
    }


_ENTRIES = json.loads(GOLDEN.read_text())
_DATA = _payloads()


def _case_id(entry: dict) -> str:
    parts = [entry["payload"], f"l{entry['level']}"]
    for key in ("strategy", "block_tokens", "final", "history"):
        if key in entry:
            parts.append(f"{key}={entry[key]}")
    return "-".join(parts)


@pytest.mark.parametrize("entry", _ENTRIES, ids=_case_id)
def test_golden_case(entry: dict) -> None:
    kwargs = {k: v for k, v in entry.items()
              if k in ("level", "strategy", "block_tokens", "final",
                       "history")}
    if "history" in kwargs:
        kwargs["history"] = _DATA[kwargs["history"]]
    data = _DATA[entry["payload"]]

    result = deflate(data, **kwargs)

    assert hashlib.sha256(result.data).hexdigest() == entry["sha256"]
    assert len(result.data) == entry["compressed_len"]
    assert result.blocks == entry["blocks"]
    stats = entry["stats"]
    assert result.stats.literals == stats["literals"]
    assert result.stats.matches == stats["matches"]
    assert result.stats.match_bytes == stats["match_bytes"]
    assert result.stats.chain_probes == stats["chain_probes"]

    if "inflate_stats" not in entry:
        return
    history = kwargs.get("history", b"")
    out, istats, bits = inflate_with_stats(result.data, history=history)
    assert out == data
    golden = entry["inflate_stats"]
    assert istats.literals == golden["literals"]
    assert istats.matches == golden["matches"]
    assert istats.match_bytes == golden["match_bytes"]
    assert istats.blocks == golden["blocks"]
    assert bits == golden["bits_consumed"]


# -- dictionary-service goldens: trained tables + canned bitstreams ----------

GOLDEN_DICTSVC = pathlib.Path(__file__).parent / "data" \
    / "golden_dictsvc.json"
_DICTSVC = json.loads(GOLDEN_DICTSVC.read_text())


@pytest.fixture(scope="module")
def dictsvc_setup():
    """Retrain the golden registry and push its tables to the engine."""
    import tools.record_goldens as record_goldens
    from repro.nx.dht import clear_trained_dhts

    assert _DICTSVC["train"] == record_goldens.DICTSVC_TRAIN, \
        "golden file was recorded with a different training grid"
    registry, corpus = record_goldens.train_dictsvc_registry()
    clear_trained_dhts()
    registry.push()
    yield registry, corpus
    clear_trained_dhts()


def test_dictsvc_training_deterministic(dictsvc_setup) -> None:
    """Same seed + traffic → byte-identical tables and priming dicts."""
    import tools.record_goldens as record_goldens

    registry, _corpus = dictsvc_setup
    fresh = record_goldens.dictionary_fingerprints(registry)
    assert fresh == _DICTSVC["dictionaries"]


@pytest.mark.parametrize(
    "stream", _DICTSVC["streams"],
    ids=lambda s: f"{s['tenant']}@{s['offset']}")
def test_dictsvc_canned_bitstream(dictsvc_setup, stream: dict) -> None:
    """Canned-DHT bitstreams replay byte-identically and interop."""
    import zlib

    from repro.nx.compressor import NxCompressor
    from repro.nx.dht import DhtStrategy, select_canned
    from repro.nx.params import POWER9

    _registry, corpus = dictsvc_setup
    data = corpus[stream["tenant"]]
    buf = data[stream["offset"]:stream["offset"] + stream["length"]]
    assert select_canned(buf) == stream["pick"]

    result = NxCompressor(POWER9.engine).compress(
        buf, strategy=DhtStrategy.CANNED)
    assert len(result.data) == stream["compressed_len"]
    assert hashlib.sha256(result.data).hexdigest() == stream["sha256"]
    # The stream is ordinary DEFLATE: stock zlib must inflate it.
    assert zlib.decompress(result.data, wbits=-15) == buf
