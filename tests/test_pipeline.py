"""NX scan pipeline: functional tokens and cycle accounting."""

import pytest

from repro.deflate.constants import MAX_MATCH, MIN_MATCH, WINDOW_SIZE
from repro.nx.params import POWER9, Z15
from repro.nx.pipeline import NxMatchPipeline

from .test_matcher import assert_tokens_valid, reconstruct


@pytest.fixture
def p9_pipe():
    return NxMatchPipeline(POWER9.engine)


class TestFunctional:
    def test_roundtrip(self, p9_pipe, payload_suite):
        for name, data in payload_suite.items():
            result = p9_pipe.scan(data)
            assert_tokens_valid(result.tokens, data)
            assert reconstruct(result.tokens) == data, name

    def test_finds_repeats(self, p9_pipe):
        result = p9_pipe.scan(b"0123456789" * 50)
        assert result.stats.matches > 0

    def test_greedy_no_lazy(self, p9_pipe):
        """Hardware takes the first acceptable match; software's lazy
        matcher may find a longer one starting one byte later."""
        data = b"ab" + b"bcd" * 4 + b"Xabcd" * 8
        result = p9_pipe.scan(data)
        assert reconstruct(result.tokens) == data

    def test_incompressible_all_literals(self, p9_pipe, random_8k):
        result = p9_pipe.scan(random_8k)
        assert result.stats.literals > 0.95 * len(random_8k)

    def test_stats_cover_input(self, p9_pipe, json_20k):
        result = p9_pipe.scan(json_20k)
        assert result.stats.input_bytes == len(json_20k)

    def test_state_reset_between_scans(self, p9_pipe):
        p9_pipe.scan(b"abcabcabc")
        result = p9_pipe.scan(b"abcabcabc")
        # Identical scans: history from the first must not leak.
        again = NxMatchPipeline(POWER9.engine).scan(b"abcabcabc")
        assert result.tokens == again.tokens


class TestCycles:
    def test_scan_cycles_match_width(self, p9_pipe):
        n = 4096
        result = p9_pipe.scan(bytes(range(256)) * (n // 256))
        width = POWER9.engine.scan_bytes_per_cycle
        assert result.scan_cycles == -(-n // width)

    def test_z15_scans_in_half_the_cycles(self, text_20k):
        p9 = NxMatchPipeline(POWER9.engine).scan(text_20k)
        z15 = NxMatchPipeline(Z15.engine).scan(text_20k)
        assert z15.scan_cycles == -(-p9.scan_cycles * 4 // 8)

    def test_total_includes_stalls(self, p9_pipe, text_20k):
        result = p9_pipe.scan(text_20k)
        assert result.total_cycles == (result.scan_cycles
                                       + result.conflict_stalls)

    def test_stalls_bounded(self, p9_pipe, text_20k):
        """Dual-ported banks keep conflict loss below a few percent."""
        result = p9_pipe.scan(text_20k)
        assert result.conflict_stalls < 0.05 * result.scan_cycles

    def test_empty_input(self, p9_pipe):
        result = p9_pipe.scan(b"")
        assert result.scan_cycles == 0
        assert result.tokens == []


class TestMatchQuality:
    def test_ratio_between_zlib1_and_zlib9(self, text_20k):
        """The hardware policy sits near zlib -6: much better than a
        crude matcher, at most a few percent behind deep lazy search."""
        from repro.deflate.compress import deflate

        hw_tokens = NxMatchPipeline(POWER9.engine).scan(text_20k)
        hw_match_bytes = hw_tokens.stats.match_bytes
        _t, s9 = __import__(
            "repro.deflate.matcher", fromlist=["tokenize"]).tokenize(
                text_20k, 9)
        assert hw_match_bytes >= 0.9 * s9.match_bytes

    def test_match_fields_legal(self, p9_pipe, binary_20k):
        result = p9_pipe.scan(binary_20k)
        for tok in result.tokens:
            if not isinstance(tok, int):
                length, dist = tok
                assert MIN_MATCH <= length <= MAX_MATCH
                assert 1 <= dist <= WINDOW_SIZE
