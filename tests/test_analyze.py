"""Compressibility analyzer: estimates vs actual engine behaviour."""

import pytest

from repro.core.analyze import analyze
from repro.nx.compressor import NxCompressor
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.workloads.generators import generate


class TestAnalyze:
    def test_empty_input(self):
        report = analyze(b"")
        assert not report.worth_compressing
        assert report.sample_bytes == 0

    def test_text_recommends_compression(self, text_20k):
        report = analyze(text_20k)
        assert report.worth_compressing
        assert report.recommended in (DhtStrategy.DYNAMIC,
                                      DhtStrategy.CANNED)
        assert report.data_class == "text"

    def test_random_not_worth_compressing(self):
        data = generate("random_bytes", 40000, seed=2)
        report = analyze(data)
        assert not report.worth_compressing
        assert report.entropy_bits_per_byte > 7.9

    def test_estimates_ordering(self, json_20k):
        report = analyze(json_20k)
        fixed = report.estimate_for(DhtStrategy.FIXED)
        dynamic = report.estimate_for(DhtStrategy.DYNAMIC)
        assert dynamic.estimated_ratio >= fixed.estimated_ratio
        assert dynamic.table_cycles > fixed.table_cycles

    def test_estimate_close_to_actual(self, json_20k):
        """Sampled estimate lands within ~20% of the real engine ratio."""
        report = analyze(json_20k)
        actual = NxCompressor(POWER9.engine).compress(
            json_20k, strategy=DhtStrategy.DYNAMIC).ratio
        estimate = report.estimate_for(DhtStrategy.DYNAMIC).estimated_ratio
        assert estimate == pytest.approx(actual, rel=0.20)

    def test_large_input_sampled(self):
        data = generate("markov_text", 500000, seed=3)
        report = analyze(data)
        assert report.sample_bytes < len(data)
        assert report.sample_bytes <= 4 * 16384

    def test_match_coverage_ranges(self):
        zero = analyze(bytes(30000))
        rand = analyze(generate("random_bytes", 30000, seed=4))
        assert zero.match_coverage > 0.95
        assert rand.match_coverage < 0.05

    def test_missing_estimate_raises(self, text_20k):
        report = analyze(text_20k)
        with pytest.raises(KeyError):
            report.estimate_for(DhtStrategy.AUTO)

    def test_dna_classified_and_compressible(self):
        data = generate("dna_sequence", 40000, seed=5)
        report = analyze(data)
        assert report.worth_compressing
        assert 1.9 < report.entropy_bits_per_byte < 2.1

    def test_analysis_is_deterministic(self, text_20k):
        assert analyze(text_20k) == analyze(text_20k)
