"""Asynchronous batch submission: submit/poll/wait_all."""

import zlib as stdzlib

import pytest

from repro.errors import JobError
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.sysstack.crb import Op
from repro.sysstack.driver import AsyncNxDriver
from repro.sysstack.mmu import AddressSpace, FaultInjector
from repro.workloads.generators import generate


def make_async(fault_probability=0.0, seed=0, credits=None):
    space = AddressSpace(
        fault_injector=FaultInjector(fault_probability, seed=seed))
    driver = AsyncNxDriver(NxAccelerator(POWER9), space)
    driver.open(credits=credits)
    return driver


class TestBatch:
    def test_many_jobs_one_poll(self):
        driver = make_async()
        payloads = [generate("json_records", 8000 + i * 500, seed=i)
                    for i in range(6)]
        jobs = [driver.submit(Op.COMPRESS, p) for p in payloads]
        assert driver.in_flight == 6
        done = driver.wait_all()
        assert len(done) == 6
        assert driver.in_flight == 0
        for job, payload in zip(jobs, payloads):
            assert job.done
            assert stdzlib.decompress(job.result.output, -15) == payload

    def test_fifo_completion_order(self):
        driver = make_async()
        jobs = [driver.submit(Op.COMPRESS,
                              generate("markov_text", 4000, seed=i))
                for i in range(4)]
        done = driver.wait_all()
        assert [j.sequence for j in done] == [j.sequence for j in jobs]

    def test_mixed_ops(self, text_20k):
        driver = make_async()
        comp_job = driver.submit(Op.COMPRESS, text_20k)
        driver.wait_all()
        decomp_job = driver.submit(Op.DECOMPRESS, comp_job.result.output)
        driver.wait_all()
        assert decomp_job.result.output == text_20k

    def test_credit_backpressure_self_drains(self):
        driver = make_async(credits=2)
        payloads = [generate("log_lines", 6000, seed=i) for i in range(8)]
        jobs = [driver.submit(Op.COMPRESS, p) for p in payloads]
        driver.wait_all()
        assert all(job.done for job in jobs)
        rejections = sum(job.stats.paste_rejections for job in jobs)
        assert rejections > 0  # the window did run out of credits

    def test_poll_without_jobs(self):
        driver = make_async()
        assert driver.poll() == []

    def test_faults_handled_during_poll(self, text_20k):
        driver = make_async(fault_probability=0.05, seed=13)
        jobs = [driver.submit(Op.COMPRESS, text_20k) for _ in range(5)]
        driver.wait_all()
        for job in jobs:
            assert stdzlib.decompress(job.result.output, -15) == text_20k
        total_faults = sum(job.stats.translation_faults for job in jobs)
        assert total_faults >= 0  # protocol converged regardless

    def test_sync_run_refused_with_pending(self, text_20k):
        driver = make_async()
        driver.submit(Op.COMPRESS, text_20k)
        with pytest.raises(JobError):
            driver.run(Op.COMPRESS, text_20k)
        driver.wait_all()
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k

    def test_per_job_stats_isolated(self):
        driver = make_async()
        small = driver.submit(Op.COMPRESS,
                              generate("markov_text", 2000, seed=1))
        large = driver.submit(Op.COMPRESS,
                              generate("markov_text", 60000, seed=2))
        driver.wait_all()
        assert large.stats.elapsed_seconds > small.stats.elapsed_seconds
