"""Speculative parallel inflate: byte parity for every worker count.

The engine has three moving parts — the worker-side speculative chunk
decoder (bit-scan + marker cells), the parent-side resolver that
splices or falls back, and the container bookkeeping (multi-member
gzip, zlib Adler, raw history).  These tests drive the speculative
machinery *inline* (plan jobs, run ``inflate_chunk_job`` with
``data=``, resolve) so the splice/patch logic is exercised
deterministically without paying process-pool spin-up per test; one
test goes through the real pool end-to-end.
"""

import gzip as stdgzip
import random
import zlib as stdzlib

import pytest

from repro.deflate.compress import deflate
from repro.deflate.containers import gzip_compress, zlib_compress
from repro.deflate.parallel_inflate import (
    _plan_jobs, _Resolver, inflate_chunk_job, parallel_inflate,
    read_range)
from repro.errors import ChecksumError, DeflateError, OutputOverflow
from repro.workloads.generators import generate


def _speculative(payload: bytes, fmt: str = "gzip", *,
                 chunk_size: int = 8192, history: bytes = b"",
                 build_index: bool = False, spacing: int = 65536):
    """The pooled path, run inline: every planned chunk is speculated
    in-process and handed to the resolver exactly as pool records are."""
    jobs = _plan_jobs(payload, fmt, chunk_size)
    counters = {"used": 0, "failed": 0, "serial": 0,
                "speculated": len(jobs)}
    specs = {}
    for job in jobs:
        record = inflate_chunk_job(data=payload, **job)
        if record.get("ok"):
            specs[record["start_bit"]] = record
        else:
            counters["failed"] += 1
    resolver = _Resolver(payload, fmt, specs, history, build_index,
                         spacing, 1 << 62, counters)
    resolver.run()
    return bytes(resolver.out), counters, resolver


class TestSerialParity:
    """workers=1 must match the stdlib decoders bit-for-bit."""

    @pytest.mark.parametrize("name", ["empty", "one", "tiny", "text",
                                      "json", "random", "binary",
                                      "zeros"])
    def test_gzip_suite(self, payload_suite, name):
        data = payload_suite[name]
        blob = gzip_compress(data, level=6)
        result = parallel_inflate(blob, "gzip", workers=1)
        assert result.data == data == stdgzip.decompress(blob)
        assert result.members == 1

    @pytest.mark.parametrize("name", ["text", "random", "zeros"])
    def test_zlib_suite(self, payload_suite, name):
        data = payload_suite[name]
        blob = zlib_compress(data, level=6)
        assert parallel_inflate(blob, "zlib", workers=1).data \
            == stdzlib.decompress(blob) == data

    def test_raw_stream(self, text_20k):
        body = deflate(text_20k, level=6).data
        assert parallel_inflate(body, "raw", workers=1).data == text_20k

    def test_raw_with_history(self, text_20k):
        history, data = text_20k[:8000], text_20k[8000:]
        body = deflate(data, level=6, history=history).data
        assert parallel_inflate(body, "raw", workers=1,
                                history=history).data == data

    def test_multi_member_gzip(self, text_20k, json_20k, random_8k):
        parts = [text_20k, random_8k, b"tiny", json_20k]
        archive = b"".join(gzip_compress(p, level=6) for p in parts)
        result = parallel_inflate(archive, "gzip", workers=1)
        assert result.data == b"".join(parts) \
            == stdgzip.decompress(archive)
        assert result.members == 4

    def test_stored_blocks_level0(self, text_20k):
        blob = gzip_compress(text_20k, level=0)
        assert parallel_inflate(blob, "gzip", workers=1).data == text_20k

    def test_stdlib_members_interleaved(self, text_20k, json_20k):
        archive = stdgzip.compress(text_20k, 9) \
            + gzip_compress(json_20k, level=6) \
            + stdgzip.compress(b"x", 1)
        assert parallel_inflate(archive, "gzip", workers=1).data \
            == text_20k + json_20k + b"x"


class TestValidation:
    def test_unknown_format(self):
        with pytest.raises(DeflateError):
            parallel_inflate(b"\x00" * 32, "brotli")

    def test_history_rejected_for_containers(self, text_20k):
        blob = gzip_compress(text_20k, level=6)
        with pytest.raises(DeflateError):
            parallel_inflate(blob, "gzip", history=b"abc")

    def test_tiny_chunk_size_rejected(self, text_20k):
        blob = gzip_compress(text_20k, level=6)
        with pytest.raises(DeflateError):
            parallel_inflate(blob, "gzip", chunk_size=1024)

    def test_gzip_crc_mismatch(self, text_20k):
        blob = bytearray(gzip_compress(text_20k, level=6))
        blob[-5] ^= 0xFF  # inside the CRC32 trailer field
        with pytest.raises(ChecksumError):
            parallel_inflate(bytes(blob), "gzip", workers=1)

    def test_zlib_adler_mismatch(self, text_20k):
        blob = bytearray(zlib_compress(text_20k, level=6))
        blob[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            parallel_inflate(bytes(blob), "zlib", workers=1)

    def test_trailing_garbage_rejected(self, text_20k):
        blob = gzip_compress(text_20k, level=6) + b"not a member"
        with pytest.raises(DeflateError):
            parallel_inflate(blob, "gzip", workers=1)

    def test_max_output_enforced(self, text_20k):
        blob = gzip_compress(text_20k, level=6)
        with pytest.raises(OutputOverflow):
            parallel_inflate(blob, "gzip", workers=1, max_output=100)

    def test_truncated_gzip(self, text_20k):
        blob = gzip_compress(text_20k, level=6)
        with pytest.raises(DeflateError):
            parallel_inflate(blob[:len(blob) // 2], "gzip", workers=1)


class TestSpeculativeResolve:
    """Inline speculation: splice/patch parity and fallback behaviour."""

    def test_text_chunks_spliced(self):
        data = generate("markov_text", 200000, seed=41)
        blob = gzip_compress(data, level=6)
        out, counters, _ = _speculative(blob, chunk_size=8192)
        assert out == data
        assert counters["used"] > 0, counters

    def test_incompressible_falls_back_serially(self):
        data = generate("random_bytes", 120000, seed=42)
        blob = gzip_compress(data, level=6)
        out, counters, _ = _speculative(blob, chunk_size=8192)
        # Random bytes deflate to literal soup; bit scans rarely find a
        # dynamic header.  What matters: bytes stay golden regardless.
        assert out == data
        assert counters["used"] + counters["failed"] \
            + counters["serial"] >= 1

    def test_multi_member_member_jobs(self):
        parts = [generate("markov_text", 60000, seed=s)
                 for s in (43, 44, 45)]
        archive = b"".join(gzip_compress(p, level=6) for p in parts)
        out, counters, resolver = _speculative(archive, chunk_size=8192)
        assert out == b"".join(parts)
        assert resolver.members == 3

    def test_stored_member_archive(self):
        parts = [generate("json_records", 40000, seed=46),
                 generate("random_bytes", 30000, seed=47)]
        archive = gzip_compress(parts[0], level=0) \
            + gzip_compress(parts[1], level=6)
        out, _, _ = _speculative(archive, chunk_size=4096)
        assert out == b"".join(parts)

    def test_zlib_speculation(self):
        data = generate("source_code", 150000, seed=48)
        blob = zlib_compress(data, level=6)
        out, counters, _ = _speculative(blob, fmt="zlib",
                                        chunk_size=8192)
        assert out == data == stdzlib.decompress(blob)

    def test_index_built_during_resolve(self):
        # Multi-member: body starts are always recorded, so the index
        # is guaranteed at least one point per member.
        parts = [generate("markov_text", 50000, seed=49 + i)
                 for i in range(3)]
        blob = b"".join(gzip_compress(p, level=6) for p in parts)
        out, _, resolver = _speculative(blob, build_index=True,
                                        spacing=16384)
        assert out == b"".join(parts)
        offs = [p.out_offset for p in resolver.points]
        assert offs == sorted(offs) and len(offs) >= 3
        assert 50000 in offs and 100000 in offs  # member body starts

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_speculative_archives(self, seed):
        rng = random.Random(0x5EED + seed)
        parts, members = [], []
        for _ in range(rng.randrange(1, 4)):
            kind = rng.choice(["markov_text", "json_records",
                               "random_bytes", "zero_bytes"])
            data = generate(kind, rng.randrange(1, 50000), seed=seed)
            parts.append(data)
            members.append(gzip_compress(data,
                                         level=rng.choice([0, 1, 6, 9])))
        archive = b"".join(members)
        out, _, _ = _speculative(archive, chunk_size=4096)
        assert out == b"".join(parts) == stdgzip.decompress(archive)


class TestPooledPath:
    def test_pool_parity_and_result_counts(self):
        data = generate("markov_text", 150000, seed=50)
        blob = gzip_compress(data, level=6)
        result = parallel_inflate(blob, "gzip", workers=2,
                                  chunk_size=8192)
        assert result.data == data
        assert result.workers == 2
        assert result.chunks_speculated >= 1
        # Session-scoped conftest fixture asserts zero leaked segments.


class TestResultIndex:
    def test_build_index_and_read_range(self):
        parts = [generate("csv_table", 90000, seed=51),
                 generate("log_lines", 90000, seed=52)]
        plain = b"".join(parts)
        blob = b"".join(gzip_compress(p, level=6) for p in parts)
        result = parallel_inflate(blob, "gzip", workers=1,
                                  build_index=True, index_spacing=32768)
        assert result.index is not None
        rr = read_range(blob, 120000, 5000, index=result.index)
        assert rr.data == plain[120000:125000]
        assert rr.skipped_bytes > 0
