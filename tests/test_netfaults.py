"""Wire-fault injection, idempotency, and retry-budget units.

The network robustness tier in isolation: :class:`NetFaultPlan`
validation and the deterministic per-connection injector, each
:class:`FaultySocket` fault acted out over a real socketpair, the
:class:`IdempotencyCache` race protocol (hit / owner / wait / abort)
and its LRU bounds, and the :class:`RetryBudget` token arithmetic.
The end-to-end behaviour these compose into lives in
``test_service_robust.py`` and the ``repro chaos --network`` campaign.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ConfigError
from repro.resilience import (NET_FAULT_KINDS, FaultySocket,
                              NetFaultInjector, NetFaultPlan, fault_factory)
from repro.service import IdempotencyCache, RetryBudget


class TestNetFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            NetFaultPlan("gremlins", probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            NetFaultPlan("reset", probability=1.5)

    def test_unfireable_plan_rejected(self):
        with pytest.raises(ConfigError):
            NetFaultPlan("reset")

    def test_at_op_defaults_to_one_fire(self):
        assert NetFaultPlan("reset", at_op=3).fire_cap == 1
        assert NetFaultPlan("reset", at_op=3, max_fires=2).fire_cap == 2
        assert NetFaultPlan("reset", probability=0.5).fire_cap \
            == float("inf")

    def test_every_kind_constructs(self):
        for kind in NET_FAULT_KINDS:
            NetFaultPlan(kind, probability=0.1)


class TestNetFaultInjector:
    def test_same_seed_same_timeline(self):
        plans = [NetFaultPlan("reset", probability=0.3)]

        def timeline(seed, peer):
            injector = NetFaultInjector(plans, seed=seed, peer=peer)
            return [injector.on_op("send") is not None
                    for _ in range(50)]

        assert timeline(7, 0) == timeline(7, 0)
        assert timeline(7, 0) != timeline(7, 1) or \
            timeline(7, 0) != timeline(8, 0)

    def test_at_op_counts_per_direction(self):
        # truncate is send-only; interleaved recvs must not consume
        # the target op, so "the 2nd send" stays aimable.
        plans = [NetFaultPlan("truncate", at_op=2)]
        injector = NetFaultInjector(plans, seed=1)
        assert injector.on_op("send") is None
        for _ in range(5):
            assert injector.on_op("recv") is None
        fired = injector.on_op("send")
        assert fired is not None and fired.kind == "truncate"

    def test_send_only_kinds_skip_recv(self):
        plans = [NetFaultPlan("duplicate", probability=1.0)]
        injector = NetFaultInjector(plans, seed=1)
        assert injector.on_op("recv") is None
        assert injector.on_op("send").kind == "duplicate"

    def test_max_fires_caps(self):
        plans = [NetFaultPlan("latency", probability=1.0, max_fires=2)]
        injector = NetFaultInjector(plans, seed=1)
        fires = sum(injector.on_op("send") is not None for _ in range(10))
        assert fires == 2
        assert injector.fired == {"latency": 2}
        assert injector.total_fired() == 2


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def _drain(sock, nbytes):
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class TestFaultySocket:
    def wrap(self, plans, seed=1):
        left, right = _pair()
        injector = NetFaultInjector(plans, seed=seed)
        return FaultySocket(left, injector), right

    def test_clean_passthrough(self):
        faulty, peer = self.wrap([NetFaultPlan("reset", at_op=99)])
        faulty.sendall(b"hello")
        assert peer.recv(16) == b"hello"
        peer.sendall(b"world")
        assert faulty.recv(16) == b"world"
        faulty.close()
        peer.close()

    def test_reset_on_send(self):
        faulty, peer = self.wrap([NetFaultPlan("reset", at_op=1)])
        with pytest.raises(ConnectionResetError):
            faulty.sendall(b"doomed")
        peer.close()

    def test_truncate_delivers_prefix_then_dies(self):
        faulty, peer = self.wrap([NetFaultPlan("truncate", at_op=1,
                                               magnitude=5.0)])
        frame = b"x" * 100
        with pytest.raises(ConnectionResetError):
            faulty.sendall(frame)
        got = _drain(peer, 100)
        assert 0 < len(got) < len(frame)
        assert frame.startswith(got)
        peer.close()

    def test_duplicate_sends_frame_twice(self):
        faulty, peer = self.wrap([NetFaultPlan("duplicate", at_op=1)])
        faulty.sendall(b"frame")
        assert _drain(peer, 10) == b"frameframe"
        faulty.close()
        peer.close()

    def test_stale_replays_older_frame(self):
        faulty, peer = self.wrap([NetFaultPlan("stale", at_op=3)])
        faulty.sendall(b"AAAA")
        faulty.sendall(b"BBBB")
        faulty.sendall(b"CCCC")  # fires: replays AAAA before CCCC
        assert _drain(peer, 16) == b"AAAABBBBAAAACCCC"
        faulty.close()
        peer.close()

    def test_slow_send_still_delivers_everything(self):
        faulty, peer = self.wrap([NetFaultPlan("slow_send", at_op=1,
                                               magnitude=4.0)])
        frame = bytes(range(256)) * 4
        done = threading.Event()
        got = []

        def reader():
            got.append(_drain(peer, len(frame)))
            done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        faulty.sendall(frame)
        assert done.wait(5.0)
        thread.join()
        assert got[0] == frame
        faulty.close()
        peer.close()

    def test_latency_delays_but_delivers(self):
        faulty, peer = self.wrap([NetFaultPlan("latency", at_op=1,
                                               magnitude=1.0)])
        faulty.sendall(b"late")
        assert peer.recv(8) == b"late"
        faulty.close()
        peer.close()

    def test_passthrough_attributes_delegate(self):
        faulty, peer = self.wrap([NetFaultPlan("reset", at_op=99)])
        faulty.settimeout(1.25)
        assert faulty.gettimeout() == 1.25
        faulty.close()
        peer.close()


class TestFaultFactory:
    def test_fresh_injector_per_connection(self):
        factory = fault_factory([NetFaultPlan("reset", at_op=1)], seed=3)
        socks = [socket.socketpair() for _ in range(3)]
        wrapped = [factory(left) for left, _ in socks]
        assert len(factory.injectors) == 3
        assert [inj.peer for inj in factory.injectors] == [0, 1, 2]
        assert all(isinstance(w, FaultySocket) for w in wrapped)
        for left, right in socks:
            left.close()
            right.close()

    def test_max_connections_passes_rest_through(self):
        factory = fault_factory([NetFaultPlan("reset", at_op=1)],
                                seed=3, max_connections=1)
        (l1, r1), (l2, r2) = socket.socketpair(), socket.socketpair()
        assert isinstance(factory(l1), FaultySocket)
        assert factory(l2) is l2
        assert len(factory.injectors) == 1
        for sock in (l1, r1, l2, r2):
            sock.close()


class TestIdempotencyCache:
    def test_owner_then_hit(self):
        cache = IdempotencyCache()
        state, key = cache.begin("t", "r1")
        assert state == "owner"
        assert cache.commit(key, {"status": "ok"}, b"body")
        state, token = cache.begin("t", "r1")
        assert state == "hit"
        assert token == ({"status": "ok"}, b"body")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == 1

    def test_tenants_do_not_share_keys(self):
        cache = IdempotencyCache()
        _, key = cache.begin("alice", "r1")
        cache.commit(key, {"status": "ok"}, b"a")
        state, _ = cache.begin("bob", "r1")
        assert state == "owner"

    def test_concurrent_resend_waits_for_owner(self):
        cache = IdempotencyCache()
        state, key = cache.begin("t", "r1")
        assert state == "owner"
        state, claim = cache.begin("t", "r1")
        assert state == "wait"
        results = []

        def waiter():
            claim.event.wait(5.0)
            results.append(cache.begin("t", "r1"))

        thread = threading.Thread(target=waiter)
        thread.start()
        cache.commit(key, {"status": "ok"}, b"done")
        thread.join(5.0)
        assert results and results[0][0] == "hit"
        assert cache.stats()["waits"] == 1

    def test_abort_frees_the_key(self):
        cache = IdempotencyCache()
        _, key = cache.begin("t", "r1")
        cache.abort(key)
        state, _ = cache.begin("t", "r1")
        assert state == "owner"
        assert cache.stats()["stores"] == 0

    def test_double_commit_counts_duplicate_store(self):
        cache = IdempotencyCache()
        _, key = cache.begin("t", "r1")
        assert cache.commit(key, {"status": "ok"}, b"x")
        assert not cache.commit(key, {"status": "ok"}, b"x")
        assert cache.stats()["duplicate_stores"] == 1

    def test_entry_bound_evicts_lru(self):
        cache = IdempotencyCache(max_entries=2)
        for i in range(3):
            _, key = cache.begin("t", f"r{i}")
            cache.commit(key, {"status": "ok"}, b"x")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # r0 was evicted, r2 is still cached.
        assert cache.begin("t", "r0")[0] == "owner"
        assert cache.begin("t", "r2")[0] == "hit"

    def test_byte_bound_evicts_oldest(self):
        cache = IdempotencyCache(max_bytes=100)
        _, key = cache.begin("t", "big0")
        cache.commit(key, {"status": "ok"}, b"x" * 80)
        _, key = cache.begin("t", "big1")
        cache.commit(key, {"status": "ok"}, b"y" * 80)
        assert cache.begin("t", "big0")[0] == "owner"
        assert cache.begin("t", "big1")[0] == "hit"
        assert cache.cached_bytes() <= 100

    def test_tenant_bound_evicts_lru_tenant(self):
        cache = IdempotencyCache(max_tenants=2)
        for tenant in ("a", "b", "c"):
            _, key = cache.begin(tenant, "r")
            cache.commit(key, {"status": "ok"}, b"x")
        stats = cache.stats()
        assert stats["tenants"] == 2
        assert cache.begin("a", "r")[0] == "owner"
        assert cache.begin("c", "r")[0] == "hit"


class TestRetryBudget:
    def test_starts_full_and_spends_down(self):
        budget = RetryBudget(capacity=2.0, deposit=0.0)
        assert budget.try_withdraw()
        assert budget.try_withdraw()
        assert not budget.try_withdraw()
        assert budget.granted == 2
        assert budget.denied == 1

    def test_requests_earn_fractional_credit(self):
        budget = RetryBudget(capacity=10.0, deposit=0.5, initial=0.0)
        assert not budget.try_withdraw()
        for _ in range(2):
            budget.on_request()
        assert budget.tokens == 1.0
        assert budget.try_withdraw()
        assert budget.tokens == 0.0

    def test_deposit_caps_at_capacity(self):
        budget = RetryBudget(capacity=1.0, deposit=5.0)
        budget.on_request()
        assert budget.tokens == 1.0
