"""The zlib-shaped facade: wbits dispatch and streaming objects."""

import gzip as stdgzip
import zlib as stdzlib

import pytest

from repro.deflate import zlib_like
from repro.errors import DeflateError
from repro.workloads.generators import generate


class TestOneShot:
    def test_wbits_zlib(self, text_20k):
        payload = zlib_like.compress(text_20k, wbits=15)
        assert stdzlib.decompress(payload) == text_20k
        assert zlib_like.decompress(payload, wbits=15) == text_20k

    def test_wbits_raw(self, text_20k):
        payload = zlib_like.compress(text_20k, wbits=-15)
        assert stdzlib.decompress(payload, -15) == text_20k
        assert zlib_like.decompress(payload, wbits=-15) == text_20k

    def test_wbits_gzip(self, text_20k):
        payload = zlib_like.compress(text_20k, wbits=31)
        assert stdgzip.decompress(payload) == text_20k
        assert zlib_like.decompress(payload, wbits=31) == text_20k

    def test_wbits_zero_rejected(self):
        with pytest.raises(DeflateError):
            zlib_like.compress(b"x", wbits=0)

    def test_zdict_zlib(self, json_20k):
        d = json_20k[:4000]
        payload = zlib_like.compress(json_20k, wbits=15, zdict=d)
        assert zlib_like.decompress(payload, wbits=15, zdict=d) == json_20k

    def test_zdict_raw(self, json_20k):
        d = json_20k[:4000]
        payload = zlib_like.compress(json_20k, wbits=-15, zdict=d)
        assert zlib_like.decompress(payload, wbits=-15,
                                    zdict=d) == json_20k

    def test_zdict_gzip_rejected(self):
        with pytest.raises(DeflateError):
            zlib_like.compress(b"x", wbits=31, zdict=b"d")


class TestCompressObj:
    def _chunks(self, data, size=7000):
        return [data[i:i + size] for i in range(0, len(data), size)]

    @pytest.mark.parametrize("wbits,decoder", [
        (-15, lambda p: stdzlib.decompress(p, -15)),
        (15, stdzlib.decompress),
        (31, stdgzip.decompress),
    ])
    def test_streaming_all_containers(self, wbits, decoder, text_20k):
        obj = zlib_like.compressobj(wbits=wbits)
        for chunk in self._chunks(text_20k):
            obj.compress(chunk)
        payload = obj.flush()
        assert decoder(payload) == text_20k

    def test_flush_with_last_chunk(self, json_20k):
        obj = zlib_like.compressobj(wbits=-15)
        obj.compress(json_20k[:10000])
        payload = obj.flush(json_20k[10000:])
        assert stdzlib.decompress(payload, -15) == json_20k

    def test_double_flush_rejected(self):
        obj = zlib_like.compressobj()
        obj.flush()
        with pytest.raises(DeflateError):
            obj.flush()

    def test_compress_after_flush_rejected(self):
        obj = zlib_like.compressobj()
        obj.flush()
        with pytest.raises(DeflateError):
            obj.compress(b"late")

    def test_zdict_streaming(self, json_20k):
        d = json_20k[:5000]
        obj = zlib_like.compressobj(wbits=-15, zdict=d)
        for chunk in self._chunks(json_20k[5000:]):
            obj.compress(chunk)
        payload = obj.flush()
        dec = stdzlib.decompressobj(-15, zdict=d)
        assert dec.decompress(payload) == json_20k[5000:]

    def test_window_carry_improves_ratio(self):
        data = generate("log_lines", 80000, seed=19)
        streaming = zlib_like.compressobj(wbits=-15)
        for chunk in self._chunks(data, 4096):
            streaming.compress(chunk)
        carried = len(streaming.flush())
        isolated = sum(len(zlib_like.compress(c, wbits=-15))
                       for c in self._chunks(data, 4096))
        assert carried < isolated


class TestDecompressObj:
    def test_unit_roundtrip(self, text_20k):
        from repro.deflate.compress import deflate

        units = []
        hist = b""
        chunks = [text_20k[i:i + 6000]
                  for i in range(0, len(text_20k), 6000)]
        for idx, chunk in enumerate(chunks):
            units.append(deflate(chunk, 6, history=hist,
                                 final=idx == len(chunks) - 1).data)
            hist = (hist + chunk)[-32768:]
        dec = zlib_like.decompressobj()
        out = b""
        for idx, unit in enumerate(units):
            out += dec.decompress(unit, final=idx == len(units) - 1)
        assert out == text_20k

    def test_zdict_decompressobj(self, json_20k):
        from repro.deflate.compress import deflate

        d = json_20k[:5000]
        unit = deflate(json_20k[5000:], 6, history=d, final=True).data
        dec = zlib_like.decompressobj(zdict=d)
        assert dec.decompress(unit, final=True) == json_20k[5000:]
