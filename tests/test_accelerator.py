"""Chip-level accelerator: paste FIFO drain, engine routing, hydration."""

import zlib as stdzlib

from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.sysstack.crb import CcCode, Crb, FunctionCode, Op
from repro.sysstack.dde import Dde
from repro.sysstack.mmu import AddressSpace


def place_job(space, data, op=Op.COMPRESS):
    src = space.alloc(max(1, len(data)))
    space.write(src, data)
    dst_len = max(4096, len(data) * 3)
    dst = space.alloc(dst_len)
    csb = space.alloc(64)
    return Crb(function=FunctionCode(op=op),
               source=Dde.direct(src, len(data)),
               target=Dde.direct(dst, dst_len), csb_address=csb)


class TestDrain:
    def test_drains_in_order_and_returns_credits(self, text_20k):
        space = AddressSpace()
        accel = NxAccelerator(POWER9)
        window = accel.vas.open_window()
        for _ in range(3):
            crb = place_job(space, text_20k)
            assert accel.vas.paste(window.window_id, crb)
        completed = accel.drain(space)
        assert len(completed) == 3
        assert window.outstanding == 0
        for job in completed:
            assert job.outcome.csb.cc is CcCode.SUCCESS

    def test_empty_drain(self):
        accel = NxAccelerator(POWER9)
        assert accel.drain(AddressSpace()) == []

    def test_compress_and_decompress_use_separate_engines(self, text_20k):
        space = AddressSpace()
        accel = NxAccelerator(POWER9)
        c_crb = place_job(space, text_20k, op=Op.COMPRESS)
        outcome = accel.execute(c_crb, space)
        payload = space.read(c_crb.target.address,
                             outcome.csb.target_written)
        d_crb = place_job(space, payload, op=Op.DECOMPRESS)
        accel.execute(d_crb, space)
        assert accel.compress_engine.counters.jobs == 1
        assert accel.decompress_engine.counters.jobs == 1

    def test_indirect_dde_hydrated_from_memory(self, text_20k):
        space = AddressSpace()
        accel = NxAccelerator(POWER9)
        window = accel.vas.open_window()

        half = len(text_20k) // 2
        a = space.alloc(half)
        b = space.alloc(len(text_20k) - half)
        space.write(a, text_20k[:half])
        space.write(b, text_20k[half:])
        gather = Dde.gather([(a, half), (b, len(text_20k) - half)])
        list_va = space.alloc(len(gather.pack_entries()))
        space.write(list_va, gather.pack_entries())
        gather.address = list_va

        dst = space.alloc(len(text_20k) * 2)
        csb = space.alloc(64)
        crb = Crb(function=FunctionCode(op=Op.COMPRESS), source=gather,
                  target=Dde.direct(dst, len(text_20k) * 2),
                  csb_address=csb)
        assert accel.vas.paste(window.window_id, crb)
        completed = accel.drain(space)
        written = completed[0].outcome.csb.target_written
        assert stdzlib.decompress(space.read(dst, written), -15) == text_20k

    def test_busy_seconds_accumulate(self, text_20k):
        space = AddressSpace()
        accel = NxAccelerator(POWER9)
        accel.execute(place_job(space, text_20k), space)
        assert accel.total_busy_seconds > 0
