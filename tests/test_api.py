"""Public API: sessions, offload advisor, metrics helpers."""

import gzip as stdgzip

import pytest

from repro import NxGzip, OffloadAdvisor, Route, software_decompress
from repro.core.metrics import Table, gbps, human_bytes, ratio, speedup
from repro.errors import ConfigError


class TestNxGzipSession:
    def test_roundtrip_gzip(self, text_20k):
        with NxGzip("POWER9") as session:
            comp = session.compress(text_20k)
            assert stdgzip.decompress(comp.data) == text_20k
            restored = session.decompress(comp.data)
            assert restored.data == text_20k

    def test_roundtrip_raw_and_zlib(self, json_20k):
        with NxGzip("POWER9") as session:
            for fmt in ("raw", "zlib"):
                comp = session.compress(json_20k, fmt=fmt)
                assert software_decompress(comp.data, fmt=fmt) == json_20k
                assert session.decompress(comp.data, fmt=fmt).data \
                    == json_20k

    def test_strategies_accepted(self, text_20k):
        with NxGzip("POWER9") as session:
            for strategy in ("fixed", "dynamic", "canned", "auto"):
                comp = session.compress(text_20k, strategy=strategy)
                assert stdgzip.decompress(comp.data) == text_20k

    def test_machine_by_object(self, text_20k):
        from repro import Z15

        with NxGzip(Z15) as session:
            comp = session.compress(text_20k)
            assert stdgzip.decompress(comp.data) == text_20k

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigError):
            NxGzip("POWER12")

    def test_session_stats_accumulate(self, text_20k):
        with NxGzip("POWER9") as session:
            session.compress(text_20k)
            session.compress(text_20k)
            assert session.stats.requests == 2
            assert session.stats.bytes_in == 2 * len(text_20k)
            assert session.stats.modelled_seconds > 0

    def test_fault_injection_still_correct(self, text_20k):
        with NxGzip("POWER9", fault_probability=0.03, seed=11) as session:
            for _ in range(4):
                comp = session.compress(text_20k)
                assert stdgzip.decompress(comp.data) == text_20k

    def test_z15_faster_than_p9(self, text_20k):
        with NxGzip("POWER9") as p9, NxGzip("z15") as z15:
            t_p9 = p9.compress(text_20k).modelled_seconds
            t_z15 = z15.compress(text_20k).modelled_seconds
            assert t_z15 < t_p9

    def test_modelled_time_far_faster_than_software(self, text_20k):
        from repro.perf.cost import SoftwareCostModel
        from repro.nx.params import POWER9

        with NxGzip("POWER9") as session:
            hw = session.compress(text_20k, fmt="raw").modelled_seconds
        sw = SoftwareCostModel(POWER9).compress_seconds(len(text_20k), 6)
        assert sw / hw > 50  # small buffer: overhead eats into 388x


class TestOffloadAdvisor:
    def test_large_buffers_route_hardware(self, p9):
        advisor = OffloadAdvisor(p9)
        rec = advisor.recommend(1 << 20)
        assert rec.route is Route.HARDWARE
        assert rec.gain > 100

    def test_margin_can_force_software(self, p9):
        advisor = OffloadAdvisor(p9, margin=1e9)
        assert advisor.recommend(1 << 20).route is Route.SOFTWARE

    def test_queue_wait_degrades_hardware(self, p9):
        advisor = OffloadAdvisor(p9)
        free = advisor.recommend(1 << 16)
        congested = advisor.recommend(1 << 16, queue_wait_s=1.0)
        assert congested.route is Route.SOFTWARE
        assert free.route is Route.HARDWARE

    def test_curve_length(self, p9):
        advisor = OffloadAdvisor(p9)
        sizes = [1 << s for s in range(10, 20)]
        assert len(advisor.curve(sizes)) == len(sizes)


class TestMetrics:
    def test_gbps(self):
        assert gbps(2_000_000_000, 1.0) == pytest.approx(2.0)
        assert gbps(100, 0.0) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")

    def test_ratio(self):
        assert ratio(1000, 250) == pytest.approx(4.0)
        assert ratio(1000, 0) == 0.0

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KB"
        assert human_bytes(2_500_000) == "2.5 MB"
        assert human_bytes(7_100_000_000) == "7.1 GB"

    def test_table_renders(self):
        table = Table(headers=["name", "value"])
        table.add("alpha", 1.2345)
        table.add("beta", 250.0)
        text = table.render(title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text
        assert "250" in text

    def test_table_wrong_arity_rejected(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add("only-one")


class Test842Session:
    def test_roundtrip(self, json_20k):
        with NxGzip("POWER9") as session:
            comp = session.compress_842(json_20k)
            back = session.decompress_842(comp.data)
        assert back.data == json_20k

    def test_842_weaker_but_faster_than_gzip(self, json_20k):
        with NxGzip("POWER9") as session:
            gz = session.compress(json_20k, fmt="raw")
            e842 = session.compress_842(json_20k)
        assert len(gz.data) < len(e842.data)
        assert e842.modelled_seconds < gz.modelled_seconds

    def test_accounted_in_session_stats(self, json_20k):
        with NxGzip("POWER9") as session:
            session.compress_842(json_20k)
            assert session.stats.requests == 1
