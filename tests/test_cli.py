"""CLI: argument handling and end-to-end command behaviour."""

import gzip as stdgzip

import pytest

from repro.cli import build_parser, main
from repro.workloads.generators import generate


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.json"
    path.write_bytes(generate("json_records", 30000, seed=6))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_bad_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "x", "--machine",
                                       "POWER12"])


class TestCompress:
    def test_creates_gzip_output(self, sample_file, capsys):
        assert main(["compress", str(sample_file)]) == 0
        out_path = sample_file.with_name(sample_file.name + ".gz")
        assert stdgzip.decompress(out_path.read_bytes()) \
            == sample_file.read_bytes()
        captured = capsys.readouterr().out
        assert "ratio" in captured
        assert "modelled time" in captured

    def test_explicit_output_and_format(self, sample_file, tmp_path,
                                        capsys):
        out = tmp_path / "out.bin"
        assert main(["compress", str(sample_file), "-o", str(out),
                     "--fmt", "raw", "--strategy", "dynamic",
                     "--machine", "z15"]) == 0
        import zlib

        assert zlib.decompress(out.read_bytes(), -15) \
            == sample_file.read_bytes()


class TestDecompress:
    def test_roundtrip(self, sample_file, tmp_path, capsys):
        gz = tmp_path / "x.gz"
        main(["compress", str(sample_file), "-o", str(gz)])
        back = tmp_path / "back.json"
        assert main(["decompress", str(gz), "-o", str(back)]) == 0
        assert back.read_bytes() == sample_file.read_bytes()


class TestInfoCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "POWER9" in out
        assert "z15" in out
        assert "DFLTCC" in out

    def test_advise(self, capsys):
        assert main(["advise", "65536"]) == 0
        out = capsys.readouterr().out
        assert "hardware" in out
        assert "break-even" in out

    def test_ratio_generator_source(self, capsys):
        assert main(["ratio", "generator:markov_text:20000"]) == 0
        out = capsys.readouterr().out
        assert "zlib -6" in out
        assert "NX dht" in out
        assert "842" in out

    def test_ratio_file_source(self, sample_file, capsys):
        assert main(["ratio", str(sample_file)]) == 0
        assert "codec comparison" in capsys.readouterr().out


class TestSelftestCommand:
    def test_passes_on_both_machines(self, capsys):
        assert main(["selftest"]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["selftest", "--machine", "z15"]) == 0


class TestCat:
    """``repro cat``: full decode, sidecar index, ranged random reads."""

    @pytest.fixture
    def gz_pair(self, tmp_path):
        """Two-member gzip archive on disk plus its plain bytes."""
        a = generate("markov_text", 60000, seed=7)
        b = generate("json_records", 40000, seed=8)
        from repro.deflate.containers import gzip_compress

        gz = tmp_path / "two.gz"
        gz.write_bytes(gzip_compress(a, level=6)
                       + gzip_compress(b, level=6))
        return gz, a + b

    def test_full_decode_writes_sidecar(self, gz_pair, tmp_path):
        gz, plain = gz_pair
        out = tmp_path / "plain.bin"
        assert main(["cat", str(gz), "-o", str(out), "--workers", "1"]) \
            == 0
        assert out.read_bytes() == plain
        assert gz.with_name(gz.name + ".rsix").exists()

    def test_range_via_sidecar_index(self, gz_pair, tmp_path, capsys):
        gz, plain = gz_pair
        full = tmp_path / "full.bin"
        main(["cat", str(gz), "-o", str(full), "--workers", "1"])
        part = tmp_path / "part.bin"
        assert main(["cat", str(gz), "--range", "61000:2048",
                     "-o", str(part), "--workers", "1"]) == 0
        assert part.read_bytes() == plain[61000:63048]
        assert "via index" in capsys.readouterr().err

    def test_range_without_index_falls_back(self, gz_pair, tmp_path,
                                            capsys):
        gz, plain = gz_pair
        part = tmp_path / "part.bin"
        assert main(["cat", str(gz), "--range", "100:50", "-o",
                     str(part), "--no-index", "--workers", "1"]) == 0
        assert part.read_bytes() == plain[100:150]
        assert "full decode" in capsys.readouterr().err

    def test_corrupt_sidecar_ignored_not_trusted(self, gz_pair,
                                                 tmp_path, capsys):
        gz, plain = gz_pair
        gz.with_name(gz.name + ".rsix").write_bytes(b"RSIXgarbage")
        part = tmp_path / "part.bin"
        assert main(["cat", str(gz), "--range", "500:100", "-o",
                     str(part), "--workers", "1"]) == 0
        assert part.read_bytes() == plain[500:600]
        assert "ignoring index" in capsys.readouterr().err

    def test_bad_range_spec(self, gz_pair, capsys):
        gz, _ = gz_pair
        assert main(["cat", str(gz), "--range", "nonsense"]) != 0
        assert "OFF:LEN" in capsys.readouterr().err
        assert main(["cat", str(gz), "--range=-5:10"]) != 0

    def test_stdout_path(self, gz_pair, capsysbinary):
        gz, plain = gz_pair
        assert main(["cat", str(gz), "--no-index", "--workers", "1"]) \
            == 0
        assert capsysbinary.readouterr().out == plain


class TestUnreachableServer:
    """Connection refused is one line on stderr and exit 1 — no traceback."""

    @pytest.fixture()
    def free_port(self):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            yield probe.getsockname()[1]

    def test_submit_refused(self, sample_file, free_port, capsys):
        assert main(["submit", str(sample_file), "--port",
                     str(free_port)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: server unreachable")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_top_refused(self, free_port, capsys):
        assert main(["top", "--url",
                     f"http://127.0.0.1:{free_port}", "--once"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach ops endpoint")
        assert "Traceback" not in err

    def test_stats_url_refused(self, free_port, capsys):
        assert main(["stats", "--url",
                     f"http://127.0.0.1:{free_port}"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach ops endpoint")
        assert "Traceback" not in err


class TestChaosNetwork:
    def test_single_scenario_survives(self, capsys):
        assert main(["chaos", "--network", "--scenario", "net_truncate",
                     "--jobs", "8", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "network chaos campaign" in out
        assert "SURVIVED" in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--network", "--scenario", "bogus"]) == 2
        assert "unknown network scenario" in capsys.readouterr().err
