"""Property and concurrency suite for the dictionary service.

The result cache makes three exact promises — singleflight
(``executions == unique keys``), partition (``hits + misses ==
requests``), and bounded LRU residency — and the registry promises
deterministic training plus versioned push/retire.  This suite proves
them the hard way: seeded thread storms racing one key, a randomized
op sequence checked against a reference LRU model, leader-failure
injection, and a storm through the full ``CompressionService`` with
the cache mounted.
"""

from __future__ import annotations

import random
import threading
import zlib
from collections import OrderedDict

import pytest

from repro.dictsvc import DictionaryRegistry, ResultCache, result_key
from repro.dictsvc.cache import _Claim
from repro.errors import ConfigError
from repro.nx.dht import (
    canned_dht,
    canned_names,
    clear_trained_dhts,
    trained_names,
)
from repro.service import CompressionService, QosClass, QosPolicy
from repro.workloads.generators import generate


@pytest.fixture(autouse=True)
def _clean_tables():
    clear_trained_dhts()
    yield
    clear_trained_dhts()


# -- result_key ---------------------------------------------------------------


class TestResultKey:
    def test_distinct_per_parameter(self) -> None:
        base = result_key(b"payload")
        assert result_key(b"payload2") != base
        assert result_key(b"payload", op="decompress") != base
        assert result_key(b"payload", fmt="gzip") != base
        assert result_key(b"payload", strategy="canned") != base
        assert result_key(b"payload", epoch=1) != base

    def test_deterministic(self) -> None:
        assert result_key(b"x", epoch=3) == result_key(b"x", epoch=3)

    def test_no_field_payload_confusion(self) -> None:
        # The separator keeps (params, payload) framing unambiguous.
        assert result_key(b"|x", fmt="raw") != result_key(b"x", fmt="raw|")


# -- singleflight storms ------------------------------------------------------


class TestSingleflight:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_storm_one_execution_per_key(self, seed: int) -> None:
        """N threads x M requests over K keys: executions == K exactly."""
        payloads = {f"key-{i}": generate("json_records", 2048, seed=i)
                    for i in range(6)}
        keys = sorted(payloads)
        cache = ResultCache()
        executions: list[str] = []
        exec_lock = threading.Lock()
        wrong: list[str] = []
        barrier = threading.Barrier(12)

        def compute(name: str) -> bytes:
            with exec_lock:
                executions.append(name)
            return zlib.compress(payloads[name])

        def worker(widx: int) -> None:
            wrng = random.Random(f"{seed}:{widx}")
            barrier.wait()
            for _ in range(25):
                name = keys[wrng.randrange(len(keys))]
                blob = cache.get_or_compute(
                    "tenant", name, lambda n=name: compute(n))
                if zlib.decompress(blob) != payloads[name]:
                    wrong.append(name)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not wrong, "a request observed another key's bytes"
        stats = cache.stats()
        # Exactly one execution per unique key, ever.
        assert sorted(executions) == keys
        assert stats["executions"] == len(keys)
        assert stats["misses"] == len(keys)
        assert stats["hits"] + stats["misses"] == stats["requests"]
        assert stats["requests"] == 12 * 25

    def test_failed_leader_releases_key(self) -> None:
        """A raising compute frees the claim; the key stays usable."""
        cache = ResultCache()

        with pytest.raises(RuntimeError):
            cache.get_or_compute(
                "t", "k", lambda: (_ for _ in ()).throw(RuntimeError()))
        assert cache.stats()["aborts"] == 1
        assert cache.get_or_compute("t", "k", lambda: b"ok") == b"ok"
        stats = cache.stats()
        # Both attempts were misses; at most one *successful* execution.
        assert stats["executions"] == 2
        assert stats["hits"] + stats["misses"] == stats["requests"]

    def test_follower_reclaims_after_leader_failure(self) -> None:
        """Parked followers wake on failure and one re-executes."""
        cache = ResultCache()
        leader_in = threading.Event()
        release_leader = threading.Event()
        results: list[bytes] = []

        def leader() -> None:
            def compute() -> bytes:
                leader_in.set()
                release_leader.wait(5)
                raise RuntimeError("leader dies")
            try:
                cache.get_or_compute("t", "k", compute)
            except RuntimeError:
                pass

        def follower() -> None:
            leader_in.wait(5)
            results.append(cache.get_or_compute("t", "k", lambda: b"F"))

        lt = threading.Thread(target=leader)
        ft = threading.Thread(target=follower)
        lt.start()
        ft.start()
        leader_in.wait(5)
        release_leader.set()
        lt.join(5)
        ft.join(5)
        assert results == [b"F"]

    def test_wait_state_exposes_claim(self) -> None:
        cache = ResultCache()
        state, claim = cache.begin("t", "k")
        assert state == "leader" and isinstance(claim, _Claim)
        state, follower_claim = cache.begin("t", "k")
        assert state == "wait" and follower_claim is claim
        cache.commit("t", "k", b"blob")
        assert claim.event.is_set()
        state, blob = cache.begin("t", "k")
        assert state == "hit" and blob == b"blob"


# -- LRU bounds vs a reference model ------------------------------------------


class _ModelLru:
    """Reference single-tenant LRU with entry and byte bounds."""

    def __init__(self, max_entries: int, max_bytes: int) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.entries: OrderedDict[str, int] = OrderedDict()
        self.evictions = 0

    def get(self, key: str) -> bool:
        if key in self.entries:
            self.entries.move_to_end(key)
            return True
        return False

    def put(self, key: str, size: int) -> None:
        if size > self.max_bytes:
            return  # uncacheable
        if key in self.entries:
            return
        self.entries[key] = size
        while (len(self.entries) > self.max_entries
               or sum(self.entries.values()) > self.max_bytes):
            self.entries.popitem(last=False)
            self.evictions += 1


class TestLruBounds:
    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_random_ops_match_reference(self, seed: int) -> None:
        """Seeded op sequence: cache == model in order, count, bytes."""
        rng = random.Random(seed)
        cache = ResultCache(max_entries=8, max_bytes=4096)
        model = _ModelLru(max_entries=8, max_bytes=4096)
        blobs = {f"k{i}": bytes(rng.randrange(1, 1200))
                 for i in range(24)}

        for _ in range(500):
            key = f"k{rng.randrange(24)}"
            state, value = cache.begin("t", key)
            if state == "hit":
                assert model.get(key), f"{key}: cache hit, model miss"
                assert value == blobs[key]
            else:
                assert state == "leader"
                assert not model.get(key), f"{key}: cache miss, model hit"
                cache.commit("t", key, blobs[key])
                model.put(key, len(blobs[key]))

            # Residency invariants hold after every single operation.
            assert cache.entries() == len(model.entries)
            assert cache.cached_bytes() == sum(model.entries.values())
            assert cache.cached_bytes() <= 4096
            assert cache.entries() <= 8
            assert [k for _t, k in cache.snapshot_keys()] \
                == list(model.entries)

        assert cache.stats()["evictions"] == model.evictions
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == stats["requests"]

    def test_byte_bound_evicts_oldest(self) -> None:
        cache = ResultCache(max_entries=100, max_bytes=1000)
        for i in range(4):
            _state, _ = cache.begin("t", f"k{i}")
            cache.commit("t", f"k{i}", bytes(400))
        # 4 x 400 > 1000: the two oldest must be gone.
        assert cache.entries() == 2
        assert [k for _t, k in cache.snapshot_keys()] == ["k2", "k3"]

    def test_oversized_blob_is_uncacheable(self) -> None:
        cache = ResultCache(max_bytes=100)
        state, _ = cache.begin("t", "big")
        assert state == "leader"
        assert cache.commit("t", "big", bytes(101)) is False
        assert cache.entries() == 0
        assert cache.stats()["uncacheable"] == 1
        # The claim was still released: next begin leads again.
        state, _ = cache.begin("t", "big")
        assert state == "leader"
        cache.abort("t", "big")

    def test_tenant_quota_shields_other_tenants(self) -> None:
        cache = ResultCache(max_entries=100, max_bytes=1 << 20,
                            tenant_max_entries=2)
        for tenant in ("a", "b"):
            for i in range(5):
                cache.begin(tenant, f"k{i}")
                cache.commit(tenant, f"k{i}", b"x" * 10)
        # Each tenant holds exactly its quota; neither washed out.
        keys = cache.snapshot_keys()
        assert sorted(k for t, k in keys if t == "a") == ["k3", "k4"]
        assert sorted(k for t, k in keys if t == "b") == ["k3", "k4"]

    def test_tenant_cap_drops_lru_tenant(self) -> None:
        cache = ResultCache(max_tenants=2)
        for tenant in ("a", "b", "c"):
            cache.begin(tenant, "k")
            cache.commit(tenant, "k", b"x")
        tenants = {t for t, _k in cache.snapshot_keys()}
        assert tenants == {"b", "c"}


# -- registry: determinism, versioning, bundles -------------------------------


def _feed(registry: DictionaryRegistry, tenant: str, seed: int) -> None:
    data = generate("json_records", 65536, seed=seed)
    for offset in range(0, len(data), 4096):
        registry.observe(tenant, data[offset:offset + 4096])


class TestRegistry:
    def test_training_deterministic(self) -> None:
        dicts = []
        for _run in range(2):
            registry = DictionaryRegistry(seed=11)
            _feed(registry, "tenant-a", seed=5)
            dicts.append(registry.train("tenant-a"))
        first, second = dicts
        assert [d.name for d in first] == [d.name for d in second]
        for a, b in zip(first, second):
            assert a.litlen_lengths == b.litlen_lengths
            assert a.dist_lengths == b.dist_lengths
            assert a.priming == b.priming

    def test_observe_order_between_tenants_irrelevant(self) -> None:
        r1 = DictionaryRegistry(seed=11)
        _feed(r1, "a", seed=5)
        _feed(r1, "b", seed=6)
        r2 = DictionaryRegistry(seed=11)
        _feed(r2, "b", seed=6)
        _feed(r2, "a", seed=5)
        assert [d.priming for d in r1.train("a")] \
            == [d.priming for d in r2.train("a")]

    def test_epoch_bump_and_push_retire(self) -> None:
        registry = DictionaryRegistry(seed=1)
        _feed(registry, "t", seed=9)
        first = registry.train("t")
        assert registry.epoch("t") == 1
        registry.push()
        v1_names = set(trained_names())
        assert {d.name for d in first} == v1_names
        assert all(name.endswith(".v1") for name in v1_names)

        second = registry.train("t")
        assert registry.epoch("t") == 2
        registry.push()
        v2_names = set(trained_names())
        assert {d.name for d in second} == v2_names
        assert not (v1_names & v2_names), "old epoch names must retire"

    def test_pushed_tables_visible_to_engine(self) -> None:
        registry = DictionaryRegistry(seed=1)
        _feed(registry, "t", seed=9)
        trained = registry.train("t")
        registry.push()
        for dictionary in trained:
            dht = canned_dht(dictionary.name)
            assert tuple(dht.litlen_lengths) == dictionary.litlen_lengths
        # Built-in library unchanged and still first-class.
        assert len(canned_names()) == 4
        assert set(canned_names(include_trained=True)) \
            >= {d.name for d in trained}

    def test_bundle_roundtrip(self, tmp_path) -> None:
        registry = DictionaryRegistry(seed=2)
        _feed(registry, "t", seed=9)
        registry.train("t")
        bundle = tmp_path / "dicts.json"
        registry.save_bundle(bundle)
        loaded = DictionaryRegistry(seed=2)
        loaded.load_bundle(bundle)
        assert [(d.name, d.litlen_lengths, d.priming)
                for d in loaded.trained()] \
            == [(d.name, d.litlen_lengths, d.priming)
                for d in registry.trained()]

    def test_bad_bundle_is_a_typed_error(self, tmp_path) -> None:
        # A missing or garbage bundle file must surface as ConfigError
        # (one-line `error: ...` at the CLI), never a raw traceback.
        registry = DictionaryRegistry()
        with pytest.raises(ConfigError):
            registry.load_bundle(str(tmp_path / "missing.json"))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json {")
        with pytest.raises(ConfigError):
            registry.load_bundle(str(garbage))
        wrong = tmp_path / "wrong.json"
        wrong.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            registry.load_bundle(str(wrong))

    def test_priming_bounded_by_window(self) -> None:
        registry = DictionaryRegistry(seed=3, priming_bytes=1024)
        _feed(registry, "t", seed=9)
        for dictionary in registry.train("t"):
            assert len(dictionary.priming) <= 1024
        with pytest.raises(ConfigError):
            DictionaryRegistry(priming_bytes=40000)


# -- the cache mounted in the service -----------------------------------------


class TestServiceIntegration:
    def test_storm_exact_reconciliation(self) -> None:
        """32 racing submits over 4 payloads: 4 executions, 28 hits."""
        payloads = [generate("json_records", 4096, seed=s)
                    for s in range(4)]
        with CompressionService(machine="POWER9", chips=1,
                                cache_mb=8) as svc:
            barrier = threading.Barrier(8)
            outputs: dict[int, list[bytes]] = {i: [] for i in range(4)}
            out_lock = threading.Lock()

            def client(widx: int) -> None:
                barrier.wait()
                for i in range(4):
                    ticket = svc.submit("compress", payloads[i],
                                        fmt="gzip", tenant="acme")
                    result = ticket.wait(timeout_s=30)
                    with out_lock:
                        outputs[i].append(result.output)

            threads = [threading.Thread(target=client, args=(w,))
                       for w in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stats = svc.stats()
            cache = stats.cache
            assert cache is not None
            assert cache["executions"] == 4
            assert cache["hits"] + cache["misses"] == cache["requests"]
            assert cache["requests"] == 32
            assert stats.completed == 32

        for i, blobs in outputs.items():
            assert len(blobs) == 8
            assert len(set(blobs)) == 1, "cache served divergent bytes"
            import gzip
            assert gzip.decompress(blobs[0]) == payloads[i]

    def test_qos_class_can_opt_out_of_cache(self) -> None:
        policy = QosPolicy((
            QosClass("cached", fifo="high", rank=0),
            QosClass("raw", fifo="normal", rank=1, cache_results=False),
        ))
        payload = generate("markov_text", 2048, seed=4)
        with CompressionService(machine="POWER9", chips=1, qos=policy,
                                cache_mb=4) as svc:
            for _ in range(3):
                svc.submit("compress", payload, qos="raw").wait(10)
            assert svc.stats().cache["requests"] == 0
            for _ in range(3):
                svc.submit("compress", payload, qos="cached").wait(10)
            cache = svc.stats().cache
            assert cache["requests"] == 3
            assert cache["hits"] == 2

    def test_qos_dht_strategy_pin(self) -> None:
        policy = QosPolicy((
            QosClass("pinned", fifo="high", rank=0,
                     dht_strategy="fixed"),
        ))
        payload = generate("markov_text", 2048, seed=4)
        with CompressionService(machine="POWER9", chips=1,
                                qos=policy) as svc:
            out = svc.submit("compress", payload, fmt="zlib",
                             qos="pinned").wait(10).output
            assert zlib.decompress(out) == payload

    def test_unknown_dht_strategy_rejected(self) -> None:
        with pytest.raises(ConfigError):
            QosClass("bad", dht_strategy="zstd")

    def test_decompress_bypasses_cache(self) -> None:
        payload = generate("markov_text", 2048, seed=4)
        blob = zlib.compress(payload)
        with CompressionService(machine="POWER9", chips=1,
                                cache_mb=4) as svc:
            for _ in range(2):
                out = svc.submit("decompress", blob,
                                 fmt="zlib").wait(10).output
                assert out == payload
            assert svc.stats().cache["requests"] == 0

    def test_cache_disabled_without_cache_mb(self) -> None:
        with CompressionService(machine="POWER9", chips=1) as svc:
            svc.submit("compress", b"hello world").wait(10)
            assert svc.stats().cache is None
