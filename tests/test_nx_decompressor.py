"""NX decompressor: functional decode plus cycle model behaviour."""

import gzip as stdgzip
import zlib as stdzlib

import pytest

from repro.deflate.compress import deflate
from repro.errors import AcceleratorError, DeflateError
from repro.nx.compressor import NxCompressor
from repro.nx.decompressor import NxDecompressor
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9, Z15


@pytest.fixture(scope="module")
def p9_decomp():
    return NxDecompressor(POWER9.engine)


class TestFunctional:
    def test_decodes_own_compressor(self, p9_decomp, payload_suite):
        comp = NxCompressor(POWER9.engine)
        for name, data in payload_suite.items():
            payload = comp.compress(data, strategy=DhtStrategy.AUTO).data
            assert p9_decomp.decompress(payload).data == data, name

    def test_decodes_software_zlib(self, p9_decomp, text_20k):
        for level in (1, 6, 9):
            payload = stdzlib.compress(text_20k, level)[2:-4]
            assert p9_decomp.decompress(payload).data == text_20k

    def test_gzip_format(self, p9_decomp, text_20k):
        payload = stdgzip.compress(text_20k)
        result = p9_decomp.decompress(payload, fmt="gzip")
        assert result.data == text_20k

    def test_zlib_format(self, p9_decomp, text_20k):
        payload = stdzlib.compress(text_20k)
        result = p9_decomp.decompress(payload, fmt="zlib")
        assert result.data == text_20k

    def test_bad_format_rejected(self, p9_decomp):
        with pytest.raises(AcceleratorError):
            p9_decomp.decompress(b"x", fmt="snappy")

    def test_corrupt_stream_raises(self, p9_decomp, text_20k):
        payload = bytearray(deflate(text_20k, level=6).data)
        payload[1] ^= 0xFF
        with pytest.raises(DeflateError):
            p9_decomp.decompress(bytes(payload))

    def test_output_cap(self, p9_decomp):
        payload = deflate(bytes(100000), level=6).data
        with pytest.raises(DeflateError):
            p9_decomp.decompress(payload, max_output=1000)


class TestTiming:
    def test_throughput_in_band(self, p9_decomp, text_20k):
        payload = deflate(text_20k, level=6).data
        result = p9_decomp.decompress(payload)
        assert 8.0 < result.throughput_gbps < 16.5

    def test_z15_faster_than_p9(self, text_20k):
        payload = deflate(text_20k, level=6).data
        p9 = NxDecompressor(POWER9.engine).decompress(payload)
        z15 = NxDecompressor(Z15.engine).decompress(payload)
        assert z15.cycles < p9.cycles

    def test_dynamic_blocks_cost_table_setup(self, text_20k):
        one_block = deflate(text_20k, level=6).data
        many_blocks = deflate(text_20k, level=6, block_tokens=256).data
        d = NxDecompressor(POWER9.engine)
        r_one = d.decompress(one_block)
        r_many = d.decompress(many_blocks)
        per_out_one = r_one.cycles / len(r_one.data)
        per_out_many = r_many.cycles / len(r_many.data)
        assert per_out_many > per_out_one

    def test_stats_carry_block_types(self, p9_decomp, text_20k):
        payload = deflate(text_20k, level=6).data
        result = p9_decomp.decompress(payload)
        assert result.stats.blocks
        assert result.stats.output_bytes == len(text_20k)

    def test_decompression_faster_than_compression(self, text_20k):
        comp = NxCompressor(POWER9.engine)
        c = comp.compress(text_20k, strategy=DhtStrategy.DYNAMIC)
        d = NxDecompressor(POWER9.engine).decompress(c.data)
        assert d.throughput_gbps > c.throughput_gbps
