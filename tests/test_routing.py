"""Multi-chip routing policies."""

import pytest

from repro.errors import ConfigError
from repro.nx.params import POWER9, Topology
from repro.perf.routing import MultiChipRouter, policy_comparison


def topo(chips=4):
    return Topology(machine=POWER9, chips_per_drawer=chips, drawers=1)


class TestRouterBasics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            MultiChipRouter(topo(), policy="teleport")

    def test_load_vector_length_checked(self):
        router = MultiChipRouter(topo(4))
        with pytest.raises(ConfigError):
            router.run([0.5, 0.5], duration_s=0.01)

    def test_jobs_complete(self):
        router = MultiChipRouter(topo(2), seed=1)
        result = router.run([0.5, 0.5], duration_s=0.05)
        assert result.completed_count() if hasattr(
            result, "completed_count") else len(result.jobs) > 0

    def test_deterministic(self):
        a = MultiChipRouter(topo(2), seed=9).run([0.5, 0.5], 0.05)
        b = MultiChipRouter(topo(2), seed=9).run([0.5, 0.5], 0.05)
        assert len(a.jobs) == len(b.jobs)
        assert a.mean_latency == pytest.approx(b.mean_latency)


class TestPolicies:
    def test_local_never_remote(self):
        result = MultiChipRouter(topo(4), policy="local", seed=2).run(
            [0.4] * 4, 0.05)
        assert result.remote_fraction == 0.0

    def test_round_robin_spreads(self):
        result = MultiChipRouter(topo(4), policy="round_robin",
                                 seed=2).run([1.2, 0.0, 0.0, 0.0], 0.05)
        served = {job.served_chip for job in result.jobs}
        assert served == {0, 1, 2, 3}

    def test_least_loaded_prefers_local_when_idle(self):
        result = MultiChipRouter(topo(4), policy="least_loaded",
                                 seed=2).run([0.05, 0.05, 0.05, 0.05],
                                             0.05)
        assert result.remote_fraction < 0.2

    def test_least_loaded_beats_local_under_imbalance(self):
        results = policy_comparison(topo(4), [1.6, 0.1, 0.1, 0.1],
                                    duration_s=0.15, seed=3)
        assert (results["least_loaded"].mean_latency
                < results["local"].mean_latency)

    def test_remote_jobs_pay_penalty(self):
        """With an exaggerated fabric penalty, round-robin's remote hops
        dominate the latency difference under light balanced load."""
        slow_fabric = Topology(machine=POWER9, chips_per_drawer=4,
                               drawers=1, cross_chip_penalty_us=50.0)
        local = MultiChipRouter(slow_fabric, policy="local", seed=5).run(
            [0.2] * 4, 0.1)
        rr = MultiChipRouter(slow_fabric, policy="round_robin",
                             seed=5).run([0.2] * 4, 0.1)
        assert rr.remote_fraction > 0.5
        assert rr.mean_latency > local.mean_latency
