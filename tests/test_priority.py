"""VAS priority FIFOs and the priority queueing model."""

import pytest

from repro.errors import VasError
from repro.nx.params import POWER9
from repro.perf.priority import PriorityQueueSim
from repro.sysstack.vas import Vas

from .test_vas import make_crb


class TestVasPriority:
    def test_high_window_routes_to_high_fifo(self):
        vas = Vas()
        high = vas.open_window(priority="high")
        normal = vas.open_window()
        vas.paste(normal.window_id, make_crb(0))
        vas.paste(high.window_id, make_crb(1))
        assert len(vas.rx_fifo_high) == 1
        assert len(vas.rx_fifo) == 1

    def test_high_served_first(self):
        vas = Vas()
        high = vas.open_window(priority="high")
        normal = vas.open_window()
        vas.paste(normal.window_id, make_crb(0))
        vas.paste(high.window_id, make_crb(1))
        assert vas.pop_request().window_id == high.window_id
        assert vas.pop_request().window_id == normal.window_id

    def test_anti_starvation(self):
        vas = Vas(starvation_bound=2, default_credits=64)
        high = vas.open_window(priority="high", credits=64)
        normal = vas.open_window(credits=64)
        vas.paste(normal.window_id, make_crb(99))
        for seq in range(6):
            vas.paste(high.window_id, make_crb(seq))
        # Two high grants, then the normal one must get through.
        order = [vas.pop_request().window_id for _ in range(4)]
        assert order[0] == high.window_id
        assert order[1] == high.window_id
        assert order[2] == normal.window_id
        assert order[3] == high.window_id

    def test_bad_priority_rejected(self):
        with pytest.raises(VasError):
            Vas().open_window(priority="urgent")

    def test_fifo_depths_independent(self):
        vas = Vas(rx_fifo_depth=1, default_credits=8)
        high = vas.open_window(priority="high")
        normal = vas.open_window()
        assert vas.paste(normal.window_id, make_crb(0))
        assert vas.paste(high.window_id, make_crb(1))  # own FIFO
        assert not vas.paste(normal.window_id, make_crb(2))

    def test_drain_still_returns_credits(self, text_20k):
        from repro.nx.accelerator import NxAccelerator
        from repro.sysstack.mmu import AddressSpace

        from .test_accelerator import place_job

        space = AddressSpace()
        accel = NxAccelerator(POWER9)
        high = accel.vas.open_window(priority="high")
        normal = accel.vas.open_window()
        accel.vas.paste(normal.window_id, place_job(space, text_20k))
        accel.vas.paste(high.window_id, place_job(space, text_20k))
        completed = accel.drain(space)
        assert [c.window_id for c in completed] == [high.window_id,
                                                    normal.window_id]
        assert high.outstanding == 0
        assert normal.outstanding == 0


class TestPriorityQueueSim:
    def _run(self, use_priority: bool):
        sim = PriorityQueueSim(POWER9, use_priority=use_priority, seed=4)
        return sim.run(high_rate_per_s=3000, bulk_rate_per_s=1400,
                       duration_s=0.15)

    def test_both_classes_complete(self):
        results = self._run(True)
        assert results["high"].count > 100
        assert results["bulk"].count >= 1

    def test_priority_improves_high_class_tail(self):
        fifo = self._run(False)
        prio = self._run(True)
        assert prio["high"].percentile(95) < fifo["high"].percentile(95)

    def test_bulk_not_starved(self):
        prio = self._run(True)
        fifo = self._run(False)
        assert prio["bulk"].count >= fifo["bulk"].count * 0.8

    def test_deterministic(self):
        a = self._run(True)
        b = self._run(True)
        assert a["high"].mean_latency == pytest.approx(
            b["high"].mean_latency)
