"""DDE scatter/gather descriptors."""

import pytest

from repro.errors import JobError
from repro.sysstack.dde import DDE_BYTES, MAX_INDIRECT_ENTRIES, Dde


class TestDirect:
    def test_segments(self):
        dde = Dde.direct(0x1000, 256)
        assert dde.segments() == [(0x1000, 256)]
        assert dde.total_length == 256

    def test_zero_length_has_no_segments(self):
        assert Dde.direct(0x1000, 0).segments() == []

    def test_negative_length_rejected(self):
        with pytest.raises(JobError):
            Dde.direct(0, -1)


class TestIndirect:
    def test_gather(self):
        dde = Dde.gather([(0x1000, 10), (0x5000, 20), (0x9000, 30)])
        assert dde.indirect
        assert dde.total_length == 60
        assert dde.segments() == [(0x1000, 10), (0x5000, 20), (0x9000, 30)]

    def test_order_preserved(self):
        segs = [(0x9000, 1), (0x1000, 2), (0x5000, 3)]
        assert Dde.gather(segs).segments() == segs

    def test_entry_limit(self):
        segs = [(i * 0x1000, 1) for i in range(MAX_INDIRECT_ENTRIES + 1)]
        with pytest.raises(JobError):
            Dde.gather(segs)

    def test_nested_indirect_rejected(self):
        outer = Dde.gather([(0x1000, 10)])
        outer.entries[0] = Dde.gather([(0x2000, 5)])
        with pytest.raises(JobError):
            outer.segments()


class TestWireForm:
    def test_direct_roundtrip(self):
        dde = Dde.direct(0xABCD0000, 12345)
        packed = dde.pack()
        assert len(packed) == DDE_BYTES
        restored, offset = Dde.unpack(packed, 0)
        assert offset == DDE_BYTES
        assert restored.address == dde.address
        assert restored.length == dde.length
        assert not restored.indirect

    def test_entry_array_roundtrip(self):
        dde = Dde.gather([(0x1000, 10), (0x2000, 20)])
        raw = dde.pack_entries()
        entries = Dde.unpack_entries(raw, 2)
        assert [(e.address, e.length) for e in entries] == [
            (0x1000, 10), (0x2000, 20)]

    def test_nested_in_entry_array_rejected(self):
        inner = Dde.gather([(0x1000, 4)])
        with pytest.raises(JobError):
            Dde.unpack_entries(inner.pack(), 1)
