"""LZ77 matcher: token validity, level behaviour, statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.constants import MAX_MATCH, MIN_MATCH, WINDOW_SIZE
from repro.deflate.matcher import (
    LEVEL_CONFIGS,
    HashChainMatcher,
    tokenize,
)


def reconstruct(tokens):
    out = bytearray()
    for tok in tokens:
        if isinstance(tok, int):
            out.append(tok)
        else:
            length, dist = tok
            start = len(out) - dist
            for k in range(length):
                out.append(out[start + k])
    return bytes(out)


def assert_tokens_valid(tokens, data):
    pos = 0
    for tok in tokens:
        if isinstance(tok, int):
            assert 0 <= tok <= 255
            pos += 1
        else:
            length, dist = tok
            assert MIN_MATCH <= length <= MAX_MATCH
            assert 1 <= dist <= WINDOW_SIZE
            assert dist <= pos
            pos += length
    assert pos == len(data)


class TestTokenize:
    @pytest.mark.parametrize("level", sorted(LEVEL_CONFIGS))
    def test_roundtrip_all_levels(self, level, text_20k):
        tokens, _stats = tokenize(text_20k, level)
        assert_tokens_valid(tokens, text_20k)
        assert reconstruct(tokens) == text_20k

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            tokenize(b"abc", 10)
        with pytest.raises(ValueError):
            tokenize(b"abc", 0)

    def test_empty(self):
        tokens, stats = tokenize(b"", 6)
        assert tokens == []
        assert stats.tokens == 0

    def test_short_input_is_literals(self):
        tokens, stats = tokenize(b"ab", 6)
        assert tokens == [ord("a"), ord("b")]
        assert stats.literals == 2

    def test_repetition_found(self):
        data = b"abcdefgh" * 10
        tokens, stats = tokenize(data, 6)
        assert stats.matches >= 1
        assert reconstruct(tokens) == data

    def test_overlapping_match(self):
        # RLE-style: "aaaa..." must use distance-1 overlapping copies.
        data = b"a" * 300
        tokens, _stats = tokenize(data, 6)
        assert any(not isinstance(t, int) and t[1] == 1 for t in tokens)
        assert reconstruct(tokens) == data

    def test_incompressible_is_mostly_literals(self, random_8k):
        tokens, stats = tokenize(random_8k, 6)
        assert stats.literals > 0.95 * len(random_8k)
        assert reconstruct(tokens) == random_8k

    def test_higher_level_never_many_more_tokens(self, text_20k):
        _t1, s1 = tokenize(text_20k, 1)
        _t9, s9 = tokenize(text_20k, 9)
        # Level 9 works harder and finds at least as much match coverage.
        assert s9.match_bytes >= s1.match_bytes * 0.98

    def test_stats_account_all_bytes(self, json_20k):
        _tokens, stats = tokenize(json_20k, 6)
        assert stats.input_bytes == len(json_20k)

    def test_probes_grow_with_level(self, text_20k):
        _t, s1 = tokenize(text_20k, 1)
        _t, s9 = tokenize(text_20k, 9)
        assert s9.chain_probes >= s1.chain_probes


class TestLevelConfigs:
    def test_levels_1_to_3_are_greedy(self):
        for level in (1, 2, 3):
            assert not LEVEL_CONFIGS[level].lazy

    def test_levels_4_to_9_are_lazy(self):
        for level in range(4, 10):
            assert LEVEL_CONFIGS[level].lazy

    def test_effort_monotone(self):
        chains = [LEVEL_CONFIGS[level].max_chain for level in range(4, 10)]
        assert chains == sorted(chains)


class TestMatcherInternals:
    def test_window_limit_respected(self):
        # A match target further than 32 KB back must not be used.
        far = b"UNIQUEPREFIX" + bytes(40000) + b"UNIQUEPREFIX"
        tokens, _ = tokenize(far, 6)
        assert_tokens_valid(tokens, far)
        assert reconstruct(tokens) == far

    def test_match_length_helper(self):
        data = b"abcabcab"
        assert HashChainMatcher._match_length(data, 0, 3, 5) == 5
        assert HashChainMatcher._match_length(data, 0, 3, 2) == 2


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=3000), st.sampled_from([1, 4, 6, 9]))
def test_tokenize_roundtrip_property(data, level):
    tokens, _stats = tokenize(data, level)
    assert reconstruct(tokens) == data


@settings(max_examples=20, deadline=None)
@given(st.text(alphabet="ab ", min_size=0, max_size=4000),
       st.sampled_from([1, 6]))
def test_low_alphabet_roundtrip_property(text, level):
    data = text.encode()
    tokens, _stats = tokenize(data, level)
    assert_tokens_valid(tokens, data)
    assert reconstruct(tokens) == data
