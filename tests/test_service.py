"""The compression service: admission, QoS, batching, drain, the wire.

Covers the serving layer end to end — in-process semantics (bounded
queues with retryable rejections, FIFO-mapped QoS scheduling, batch
coalescing sized by the E16 depth, drain/close), the socket protocol,
and the headline acceptance scenario: a seeded load test driving the
server to 4x its queue capacity and asserting explicit shedding,
bounded queues, byte-correct accepted payloads, interactive p99
protection while bulk saturates the pool, and a single exported
trace + metrics snapshot describing the whole run.
"""

from __future__ import annotations

import gzip
import json
import threading
import time

import pytest

from repro import obs
from repro.backend.pool import AcceleratorPool
from repro.errors import (ConfigError, DeadlineExceeded, ServiceClosed,
                          ServiceOverloaded)
from repro.service import (CompressionService, QosClass, QosPolicy,
                           ServiceClient, serve)
from repro.service.protocol import (ProtocolError, recv_message,
                                    send_message)
from repro.workloads.generators import generate


@pytest.fixture()
def service():
    svc = CompressionService(chips=2)
    yield svc
    svc.close()


def small_policy(limit: int = 4, max_batch: int = 4) -> QosPolicy:
    return QosPolicy((
        QosClass("interactive", fifo="high", rank=0, queue_limit=limit,
                 max_batch=2),
        QosClass("bulk", fifo="normal", rank=1, queue_limit=limit,
                 max_batch=max_batch),
    ))


class TestInProcess:
    def test_round_trip_every_class(self, service, text_20k):
        for qos in ("interactive", "batch", "bulk"):
            result = service.compress(text_20k, qos=qos)
            assert gzip.decompress(result.output) == text_20k
            assert result.qos == qos

    def test_decompress_path(self, service, json_20k):
        payload = service.compress(json_20k).output
        assert service.decompress(payload).output == json_20k

    def test_default_class_is_first(self, service):
        result = service.compress(b"x" * 1000)
        assert result.qos == "interactive"

    def test_unknown_qos_rejected(self, service):
        with pytest.raises(ConfigError):
            service.submit("compress", b"data", qos="no-such-class")

    def test_unknown_op_rejected(self, service):
        with pytest.raises(ConfigError):
            service.submit("transmogrify", b"data")

    def test_stats_track_requests(self, service, text_20k):
        for _ in range(3):
            service.compress(text_20k, tenant="acme")
        stats = service.stats()
        assert stats.accepted == 3
        assert stats.completed == 3
        assert stats.rejected == 0
        assert stats.per_class["interactive"]["completed"] == 3
        assert stats.per_tenant["acme"]["accepted"] == 3
        assert stats.in_service == 0


class TestAdmissionControl:
    def test_full_queue_sheds_with_retry_after(self):
        with CompressionService(chips=1, qos=small_policy(2)) as svc:
            data = b"y" * 30000
            tickets, errors = [], []
            for _ in range(100):
                try:
                    tickets.append(svc.submit("compress", data,
                                              qos="bulk"))
                except ServiceOverloaded as exc:
                    errors.append(exc)
            assert errors, "flood never shed"
            for exc in errors:
                assert exc.retryable
                assert exc.retry_after_s > 0
                assert exc.qos == "bulk"
            for ticket in tickets:
                result = ticket.wait(30)
                assert gzip.decompress(result.output) == data
            stats = svc.stats()
            assert stats.accepted == len(tickets)
            assert stats.rejected == len(errors)
            assert stats.accepted + stats.rejected == 100

    def test_queue_never_exceeds_bound(self):
        limit = 3
        with CompressionService(chips=1, qos=small_policy(limit)) as svc:
            for _ in range(50):
                try:
                    svc.submit("compress", b"z" * 20000, qos="bulk")
                except ServiceOverloaded:
                    pass
                assert svc.stats().queued <= 2 * limit
            svc.drain()

    def test_byte_bound_sheds_big_payloads(self):
        policy = QosPolicy((QosClass("only", queue_limit=100,
                                     queue_bytes_limit=10_000),))
        with CompressionService(chips=1, qos=policy) as svc:
            svc.submit("compress", b"a" * 9_000, qos="only")
            with pytest.raises(ServiceOverloaded):
                svc.submit("compress", b"b" * 9_000, qos="only")


class TestBatching:
    def test_requests_coalesce(self):
        with CompressionService(chips=1, qos=small_policy(8)) as svc:
            data = b"w" * 40000
            tickets = []
            for _ in range(8):
                try:
                    tickets.append(svc.submit("compress", data,
                                              qos="bulk"))
                except ServiceOverloaded:
                    pass
            results = [t.wait(30) for t in tickets]
            assert all(gzip.decompress(r.output) == data
                       for r in results)
            assert any(r.batch_size > 1 for r in results), \
                "no batch ever coalesced"
            assert svc.stats().batches < len(results)

    def test_batch_depth_respects_pool_suggestion(self):
        pool = AcceleratorPool(chips=1, backend="nx")
        depth = pool.suggested_batch_depth()
        assert depth >= 1
        with CompressionService(pool) as svc:
            result = svc.compress(b"q" * 5000)
            assert result.batch_size <= max(depth, 1)

    def test_batching_disabled_still_serves(self):
        with CompressionService(chips=1, batching=False,
                                qos=small_policy(8)) as svc:
            data = b"v" * 20000
            tickets = [svc.submit("compress", data, qos="bulk")
                       for _ in range(4)]
            for ticket in tickets:
                result = ticket.wait(30)
                assert gzip.decompress(result.output) == data
                assert result.batch_size == 1


class TestLifecycle:
    def test_drain_serves_backlog_then_refuses(self):
        svc = CompressionService(chips=1)
        tickets = [svc.submit("compress", b"d" * 10000)
                   for _ in range(5)]
        assert svc.drain(timeout_s=30)
        for ticket in tickets:
            assert ticket.wait(1).output  # already fulfilled
        with pytest.raises(ServiceClosed):
            svc.submit("compress", b"late")
        svc.close()
        assert svc.stats().state == "stopped"

    def test_close_without_drain_fails_queued(self):
        svc = CompressionService(chips=1, qos=small_policy(50))
        tickets = []
        for _ in range(20):
            try:
                tickets.append(svc.submit("compress", b"c" * 30000,
                                          qos="bulk"))
            except ServiceOverloaded:
                break
        svc.close(drain=False, timeout_s=10)
        outcomes = {"ok": 0, "closed": 0}
        for ticket in tickets:
            try:
                ticket.wait(1)
                outcomes["ok"] += 1
            except ServiceClosed:
                outcomes["closed"] += 1
        assert outcomes["ok"] + outcomes["closed"] == len(tickets)

    def test_context_manager_drains(self):
        with CompressionService(chips=1) as svc:
            ticket = svc.submit("compress", b"m" * 5000)
        assert ticket.wait(1).output

    def test_external_pool_not_closed(self):
        pool = AcceleratorPool(chips=1, backend="nx")
        with CompressionService(pool) as svc:
            svc.compress(b"e" * 1000)
        # The pool outlives the service and still works.
        assert pool.compress(b"e" * 1000).output
        pool.close()


class TestDeadlines:
    def test_queue_wait_past_deadline_expires(self):
        # A deadline far shorter than the bulk backlog ahead of it.
        policy = QosPolicy((
            QosClass("bulk", fifo="normal", rank=0, queue_limit=64,
                     max_batch=1),))
        with CompressionService(chips=1, qos=policy) as svc:
            blockers = [svc.submit("compress", b"b" * 200_000, qos="bulk")
                        for _ in range(6)]
            doomed = svc.submit("compress", b"late" * 100, qos="bulk",
                                deadline_s=1e-9)
            with pytest.raises(DeadlineExceeded):
                doomed.wait(30)
            for ticket in blockers:
                assert ticket.wait(30).output
            stats = svc.stats()
            assert stats.expired >= 1

    def test_class_default_deadline_applies(self):
        policy = QosPolicy((
            QosClass("strict", fifo="normal", rank=0, queue_limit=64,
                     max_batch=1, default_deadline_s=1e-9),))
        with CompressionService(chips=1, qos=policy) as svc:
            tickets = [svc.submit("compress", b"b" * 200_000,
                                  qos="strict") for _ in range(4)]
            expired = 0
            for ticket in tickets:
                try:
                    ticket.wait(30)
                except DeadlineExceeded as exc:
                    expired += 1
                    assert exc.deadline_s == pytest.approx(1e-9)
            # The 1 ns class default is unmeetable for any queued wait.
            assert expired >= 1
            assert svc.stats().expired == expired


class TestQosScheduling:
    def test_high_fifo_preferred(self):
        policy = QosPolicy(starvation_bound=8)
        picked = policy.pick({"interactive": 3, "bulk": 3})
        assert picked.name == "interactive"

    def test_starvation_bound_forces_normal(self):
        policy = QosPolicy(starvation_bound=3)
        picks = [policy.pick({"interactive": 1, "bulk": 1}).name
                 for _ in range(8)]
        assert "bulk" in picks, f"normal FIFO starved: {picks}"
        # At most starvation_bound consecutive high picks.
        run = 0
        for name in picks:
            run = run + 1 if name == "interactive" else 0
            assert run <= 3

    def test_rank_orders_within_fifo(self):
        policy = QosPolicy()
        picked = policy.pick({"batch": 2, "bulk": 2})
        assert picked.name == "batch"

    def test_empty_pick_is_none(self):
        assert QosPolicy().pick({}) is None
        assert QosPolicy().pick({"interactive": 0}) is None


class TestWireProtocol:
    def test_socket_round_trip(self, text_20k):
        svc = CompressionService(chips=2)
        server = serve(svc, port=0)
        try:
            with ServiceClient(port=server.port) as client:
                assert client.ping()
                comp = client.compress(text_20k, qos="bulk",
                                       tenant="wire")
                assert gzip.decompress(comp.output) == text_20k
                back = client.decompress(comp.output)
                assert back.output == text_20k
                stats = client.stats()
                assert stats["completed"] >= 2
                assert stats["state"] == "running"
        finally:
            server.shutdown()
            svc.close()

    def test_rejection_is_structured_on_the_wire(self):
        svc = CompressionService(chips=1, qos=small_policy(1))
        server = serve(svc, port=0)
        try:
            rejected = None
            clients = [ServiceClient(port=server.port) for _ in range(8)]
            try:
                def flood(client):
                    nonlocal rejected
                    try:
                        client.compress(b"f" * 50000, qos="bulk")
                    except ServiceOverloaded as exc:
                        rejected = exc
                threads = [threading.Thread(target=flood, args=(c,))
                           for c in clients]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                for client in clients:
                    client.close()
            if rejected is not None:   # shedding depends on timing
                assert rejected.retryable
                assert rejected.retry_after_s >= 0
        finally:
            server.shutdown()
            svc.close()

    def test_unknown_op_is_error_not_disconnect(self):
        svc = CompressionService(chips=1)
        server = serve(svc, port=0)
        try:
            with ServiceClient(port=server.port) as client:
                header, _ = client.call({"op": "frobnicate"})
                assert header["status"] == "error"
                assert not header["retryable"]
                assert client.ping()  # connection survived
        finally:
            server.shutdown()
            svc.close()

    def test_oversized_header_raises(self):
        import io

        class FakeSock:
            def __init__(self, data):
                self._buf = io.BytesIO(data)

            def recv(self, n):
                return self._buf.read(n)

        huge = (1 << 21).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            recv_message(FakeSock(huge))

    def test_protocol_frames_compose(self):
        import socket as socketlib

        a, b = socketlib.socketpair()
        try:
            send_message(a, {"op": "ping", "n": 1}, b"payload")
            header, payload = recv_message(b)
            assert header == {"op": "ping", "n": 1}
            assert payload == b"payload"
        finally:
            a.close()
            b.close()


class TestAcceptanceLoad:
    """The E20 acceptance scenario from the issue, seeded and bounded."""

    def test_shed_under_4x_capacity_with_correct_bytes(self, tmp_path):
        obs.reset()
        obs.enable()
        try:
            policy = QosPolicy((
                QosClass("interactive", fifo="high", rank=0,
                         queue_limit=32, max_batch=2),
                QosClass("bulk", fifo="normal", rank=1, queue_limit=32,
                         max_batch=4),
            ))
            capacity = 64            # sum of queue limits
            offered = 4 * capacity   # the 4x storm
            data = generate("json_records", 4096, seed=20)
            with CompressionService(chips=2, qos=policy) as svc:
                # Uncontended interactive latency first.
                quiet = []
                for _ in range(10):
                    t0 = time.perf_counter()
                    result = svc.compress(data, qos="interactive")
                    quiet.append(time.perf_counter() - t0)
                    assert gzip.decompress(result.output) == data
                quiet_p99 = sorted(quiet)[-1]

                accepted: list = []
                shed: list = []
                lock = threading.Lock()

                def blast(worker: int) -> None:
                    for _ in range(offered // 8):
                        qos = ("interactive" if worker % 4 == 0
                               else "bulk")
                        try:
                            ticket = svc.submit("compress", data,
                                                qos=qos)
                        except ServiceOverloaded as exc:
                            with lock:
                                shed.append(exc)
                            continue
                        with lock:
                            accepted.append(ticket)
                        depth = svc.stats().queued
                        assert depth <= capacity, \
                            f"queue grew past its bound: {depth}"

                threads = [threading.Thread(target=blast, args=(w,))
                           for w in range(8)]
                for t in threads:
                    t.start()

                # Interactive probes while the storm rages.
                loaded = []
                for _ in range(15):
                    t0 = time.perf_counter()
                    try:
                        result = svc.compress(data, qos="interactive",
                                              timeout_s=30)
                    except ServiceOverloaded as exc:
                        with lock:
                            shed.append(exc)
                        continue
                    loaded.append(time.perf_counter() - t0)
                    assert gzip.decompress(result.output) == data
                for t in threads:
                    t.join()

                # Every accepted payload byte-correct.
                for ticket in accepted:
                    result = ticket.wait(60)
                    assert gzip.decompress(result.output) == data

                stats = svc.stats()
                assert stats.rejected == len(shed)
                assert stats.completed >= len(accepted)
                assert shed, "a 4x storm must shed"
                assert all(e.retryable and e.retry_after_s > 0
                           for e in shed)
                # High-QoS latency protected: loaded p99 within 10x of
                # uncontended (with a floor absorbing scheduler jitter).
                if loaded:
                    loaded_p99 = sorted(loaded)[
                        max(0, int(len(loaded) * 0.99) - 1)]
                    floor = max(quiet_p99, 0.05)
                    assert loaded_p99 <= 10 * floor, (
                        f"interactive p99 {loaded_p99:.4f}s vs "
                        f"uncontended {quiet_p99:.4f}s")

            # The whole run is visible as telemetry: spans + metrics.
            spans = obs.tracer().finished("service.request")
            assert len(spans) >= len(accepted)
            trace_path = obs.export_chrome_trace(
                tmp_path / "e20.trace.json")
            assert json.loads(trace_path.read_text())["traceEvents"]
            metrics = json.loads(obs.registry().to_json())
            assert "repro_service_outcomes_total" in metrics
            assert "repro_service_rejected_total" in metrics
        finally:
            obs.disable()
            obs.reset()

    def test_request_spans_nest_pool_children(self):
        obs.reset()
        obs.enable()
        try:
            with CompressionService(chips=1) as svc:
                svc.compress(b"s" * 20000, qos="interactive")
            spans = obs.tracer().finished()
            requests = [s for s in spans if s.name == "service.request"]
            assert requests
            request = requests[-1]
            children = [s for s in spans
                        if s.trace_id == request.trace_id
                        and s.parent_id == request.span_id]
            assert children, "pool spans did not nest under the request"
        finally:
            obs.disable()
            obs.reset()
