"""Wire trace context: parsing, propagation, folding, tree building."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.context import TraceContext
from repro.obs.export import spans_to_trees
from repro.obs.trace import TRACE


@pytest.fixture
def telemetry():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


class TestTraceContext:
    def test_new_has_valid_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)
        assert ctx.parent_id is None

    def test_child_keeps_trace_links_parent(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.parent_id == parent.span_id

    def test_traceparent_roundtrip(self):
        ctx = TraceContext.new()
        parsed = TraceContext.parse(ctx.to_traceparent())
        assert parsed == ctx

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "00-short-short-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero span
        "00-" + "G" * 32 + "-" + "1" * 16 + "-01",   # non-hex
        "xx-" + "a" * 32 + "-" + "1" * 16 + "-01",   # bad version
    ])
    def test_malformed_headers_never_raise(self, header):
        assert TraceContext.parse(header) is None

    def test_dict_roundtrip(self):
        ctx = TraceContext.new().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(None) is None


class TestSpanContext:
    def test_span_carries_and_serializes_ctx(self, telemetry):
        ctx = TraceContext.new()
        with TRACE.span("client.request", ctx=ctx):
            pass
        (span,) = TRACE.finished("client.request")
        assert span.ctx == ctx
        assert span.to_dict()["ctx"] == ctx.to_dict()

    def test_plain_span_has_no_ctx(self, telemetry):
        with TRACE.span("plain"):
            pass
        (span,) = TRACE.finished("plain")
        assert span.ctx is None
        assert "ctx" not in span.to_dict()

    def test_current_ctx_finds_nearest_carrier(self, telemetry):
        ctx = TraceContext.new()
        assert TRACE.current_ctx() is None
        with TRACE.span("outer", ctx=ctx):
            with TRACE.span("inner"):
                assert TRACE.current_ctx() == ctx
        assert TRACE.current_ctx() is None

    def test_fold_restores_ctx(self, telemetry):
        ctx = TraceContext.new()
        with TRACE.span("worker.job", ctx=ctx):
            pass
        records = [span.to_dict() for span in TRACE.finished()]
        obs.reset()
        folded = TRACE.fold(records)
        assert folded[0].ctx == ctx


class TestSpansToTrees:
    def test_local_hierarchy_one_tree(self, telemetry):
        with TRACE.span("a"):
            with TRACE.span("b"):
                pass
        (tree,) = spans_to_trees(TRACE.finished())
        assert tree["trace_id"].startswith("local-")
        (root,) = tree["roots"]
        assert root["name"] == "a"
        assert [c["name"] for c in root["children"]] == ["b"]

    def test_wire_context_merges_separate_local_traces(self, telemetry):
        """A client span and a detached server span with a child ctx
        come out as one nested tree keyed by the wire trace id."""
        client_ctx = TraceContext.new()
        with TRACE.span("client.request", ctx=client_ctx):
            pass
        server_span = TRACE.span_detached("service.request",
                                          ctx=client_ctx.child())
        with TRACE.adopt(server_span):
            with TRACE.span("pool.route"):
                pass
        server_span.end()
        trees = spans_to_trees(TRACE.finished())
        assert len(trees) == 1
        tree = trees[0]
        assert tree["trace_id"] == client_ctx.trace_id
        (root,) = tree["roots"]
        assert root["name"] == "client.request"
        (service,) = root["children"]
        assert service["name"] == "service.request"
        assert [c["name"] for c in service["children"]] == ["pool.route"]

    def test_unrelated_traces_stay_separate(self, telemetry):
        with TRACE.span("one", ctx=TraceContext.new()):
            pass
        with TRACE.span("two", ctx=TraceContext.new()):
            pass
        assert len(spans_to_trees(TRACE.finished())) == 2

    def test_folded_worker_spans_join_wire_tree(self, telemetry):
        """Worker span dicts folded under a local parent join the same
        wire tree as the request that spawned them (the exec path)."""
        req_ctx = TraceContext.new()
        req = TRACE.span_detached("service.request", ctx=req_ctx.child())
        with TRACE.adopt(req):
            with TRACE.span("pool.route") as route:
                pass
        req.end()
        # Simulate a worker: its own tracer, a ctx-stamped root span.
        worker = obs.trace.Tracer()
        worker.enable()
        worker_ctx = TraceContext.parse(
            req.ctx.to_traceparent()).child()
        with worker.span("worker.job", ctx=worker_ctx):
            with worker.span("deflate.kernel"):
                pass
        records = [span.to_dict() for span in worker.finished()]
        TRACE.fold(records, parent=route)
        (tree,) = spans_to_trees(TRACE.finished())
        assert tree["trace_id"] == req_ctx.trace_id
        (root,) = tree["roots"]
        (route_node,) = root["children"]
        assert route_node["name"] == "pool.route"
        (job,) = route_node["children"]
        assert job["name"] == "worker.job"
        assert [c["name"] for c in job["children"]] == ["deflate.kernel"]
