"""Shared-accelerator queueing simulation."""

import pytest

from repro.nx.params import POWER9
from repro.perf.queueing import AcceleratorQueueSim, load_sweep
from repro.workloads.traces import bimodal_size, fixed_size


def make_sim(**kwargs):
    defaults = dict(machine=POWER9, engines=1, seed=7,
                    size_sampler=fixed_size(65536))
    defaults.update(kwargs)
    return AcceleratorQueueSim(**defaults)


class TestOpenLoop:
    def test_jobs_complete(self):
        result = make_sim().run_open(arrival_rate_per_s=500, clients=4,
                                     duration_s=0.05)
        assert result.completed > 0
        assert all(job.finish_time >= job.start_time
                   >= job.submit_time - 1e-5 for job in result.jobs)

    def test_light_load_latency_near_service(self):
        sim = make_sim()
        service = sim.service_seconds(65536)
        result = sim.run_open(arrival_rate_per_s=100, clients=2,
                              duration_s=0.1)
        assert result.mean_latency < 2.5 * service

    def test_latency_rises_with_load(self):
        results = load_sweep(POWER9, loads=[0.3, 0.95],
                             size_bytes=65536, clients=8,
                             duration_s=0.15)
        light = results[0][1].mean_latency
        heavy = results[1][1].mean_latency
        assert heavy > 1.3 * light

    def test_throughput_capped_by_capacity(self):
        sim = make_sim()
        service = sim.service_seconds(65536)
        capacity_gbps = (65536 / service) / 1e9
        results = load_sweep(POWER9, loads=[1.5], size_bytes=65536,
                             clients=8, duration_s=0.1)
        assert results[0][1].throughput_gbps <= capacity_gbps * 1.05

    def test_two_engines_double_capacity(self):
        one = load_sweep(POWER9, loads=[1.5], clients=8,
                         duration_s=0.1, engines=1)[0][1]
        two = load_sweep(POWER9, loads=[1.5], clients=8,
                         duration_s=0.1, engines=2)[0][1]
        # Same offered load per engine; two engines finish ~2x the bytes.
        assert two.throughput_gbps > 1.6 * one.throughput_gbps

    def test_deterministic_given_seed(self):
        a = make_sim(seed=5).run_open(300, 4, 0.05)
        b = make_sim(seed=5).run_open(300, 4, 0.05)
        assert a.completed == b.completed
        assert a.mean_latency == pytest.approx(b.mean_latency)

    def test_percentiles_ordered(self):
        result = make_sim().run_open(800, 8, 0.1)
        assert (result.latency_percentile(50)
                <= result.latency_percentile(95)
                <= result.latency_percentile(99.9))


class TestClosedLoop:
    def test_jobs_complete(self):
        result = make_sim().run_closed(clients=8, think_seconds=1e-4,
                                       duration_s=0.05)
        assert result.completed > 0

    def test_more_clients_more_throughput_until_saturation(self):
        small = make_sim().run_closed(clients=1, think_seconds=1e-4,
                                      duration_s=0.05)
        large = make_sim().run_closed(clients=16, think_seconds=1e-4,
                                      duration_s=0.05)
        assert large.throughput_gbps > small.throughput_gbps


class TestMixes:
    def test_bulk_jobs_inflate_small_job_tail(self):
        uniform = make_sim(size_sampler=fixed_size(8192))
        mixed = make_sim(size_sampler=bimodal_size(8192, 4 << 20, 0.9))
        r_uniform = uniform.run_open(2000, 8, 0.05)
        r_mixed = mixed.run_open(2000, 8, 0.05)
        small_lat = [j.sojourn for j in r_mixed.jobs
                     if j.size_bytes == 8192]
        assert small_lat
        p99_mixed = sorted(small_lat)[int(0.99 * len(small_lat)) - 1]
        assert p99_mixed > r_uniform.latency_percentile(99)

    def test_empty_result_safe(self):
        result = make_sim().run_open(arrival_rate_per_s=0.0001, clients=1,
                                     duration_s=0.0001)
        assert result.mean_latency == 0.0
        assert result.latency_percentile(99) == 0.0
