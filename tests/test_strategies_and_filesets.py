"""zlib strategies, multi-member gzip, and the file-set workload."""

import gzip as stdgzip
import zlib as stdzlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.compress import deflate
from repro.deflate.containers import (
    gzip_compress,
    gzip_decompress_members,
    gzip_member_length,
)
from repro.deflate.inflate import inflate
from repro.deflate.matcher import tokenize_huffman_only, tokenize_rle
from repro.errors import DeflateError
from repro.workloads.filesets import (
    FileSetSpec,
    by_extension,
    make_fileset,
    total_bytes,
)
from repro.workloads.generators import generate


class TestHuffmanOnly:
    def test_no_matches(self, text_20k):
        tokens, stats = tokenize_huffman_only(text_20k)
        assert stats.matches == 0
        assert stats.literals == len(text_20k)
        assert all(isinstance(t, int) for t in tokens)

    def test_roundtrip_and_interop(self, text_20k):
        result = deflate(text_20k, strategy="huffman_only")
        assert inflate(result.data) == text_20k
        assert stdzlib.decompress(result.data, -15) == text_20k

    def test_size_close_to_stdlib(self, json_20k):
        ours = len(deflate(json_20k, strategy="huffman_only").data)
        comp = stdzlib.compressobj(6, stdzlib.DEFLATED, -15, 9,
                                   stdzlib.Z_HUFFMAN_ONLY)
        theirs = len(comp.compress(json_20k) + comp.flush())
        assert ours == pytest.approx(theirs, rel=0.03)

    def test_weaker_than_default(self, text_20k):
        huff = len(deflate(text_20k, strategy="huffman_only").data)
        default = len(deflate(text_20k).data)
        assert default < huff


class TestRle:
    def test_only_distance_one(self):
        data = b"aaaabbbbccccabcabc"
        tokens, _stats = tokenize_rle(data)
        for tok in tokens:
            if not isinstance(tok, int):
                assert tok[1] == 1

    def test_roundtrip_and_interop(self):
        data = generate("database_pages", 30000, seed=17)
        result = deflate(data, strategy="rle")
        assert inflate(result.data) == data
        assert stdzlib.decompress(result.data, -15) == data

    def test_matches_stdlib_size_exactly_on_runs(self):
        data = generate("database_pages", 30000, seed=7)
        ours = len(deflate(data, strategy="rle").data)
        comp = stdzlib.compressobj(6, stdzlib.DEFLATED, -15, 9,
                                   stdzlib.Z_RLE)
        theirs = len(comp.compress(data) + comp.flush())
        assert ours == pytest.approx(theirs, rel=0.02)

    def test_long_runs_collapse(self):
        result = deflate(b"x" * 100000, strategy="rle")
        assert len(result.data) < 1000

    def test_between_huffman_and_default_on_runs(self):
        data = generate("database_pages", 30000, seed=9)
        huff = len(deflate(data, strategy="huffman_only").data)
        rle = len(deflate(data, strategy="rle").data)
        default = len(deflate(data).data)
        assert default <= rle <= huff

    def test_unknown_strategy_rejected(self):
        with pytest.raises(DeflateError):
            deflate(b"x", strategy="filtered")

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=2000))
    def test_rle_roundtrip_property(self, data):
        result = deflate(data, strategy="rle")
        assert inflate(result.data) == data


class TestMultiMemberGzip:
    def test_two_members(self, text_20k, json_20k):
        archive = gzip_compress(text_20k) + gzip_compress(json_20k)
        assert gzip_decompress_members(archive) == text_20k + json_20k

    def test_stdlib_agrees(self, text_20k, json_20k):
        archive = gzip_compress(text_20k) + gzip_compress(json_20k)
        assert stdgzip.decompress(archive) == text_20k + json_20k

    def test_we_decode_stdlib_members(self, text_20k):
        archive = stdgzip.compress(text_20k) + stdgzip.compress(b"tail")
        assert gzip_decompress_members(archive) == text_20k + b"tail"

    def test_member_length(self, text_20k):
        member = gzip_compress(text_20k)
        archive = member + gzip_compress(b"x")
        assert gzip_member_length(archive) == len(member)
        assert gzip_member_length(archive, start=len(member)) \
            == len(archive) - len(member)

    def test_single_member(self, text_20k):
        assert gzip_decompress_members(gzip_compress(text_20k)) == text_20k

    def test_empty_archive(self):
        assert gzip_decompress_members(b"") == b""

    def test_bad_magic_mid_archive(self, text_20k):
        archive = gzip_compress(text_20k) + b"JUNK" * 5
        with pytest.raises(DeflateError):
            gzip_decompress_members(archive)


class TestFilesets:
    def test_deterministic(self):
        a = make_fileset(FileSetSpec(files=10, seed=3))
        b = make_fileset(FileSetSpec(files=10, seed=3))
        assert a == b

    def test_seed_changes_content(self):
        a = make_fileset(FileSetSpec(files=10, seed=3))
        b = make_fileset(FileSetSpec(files=10, seed=4))
        assert a != b

    def test_file_count_and_bounds(self):
        spec = FileSetSpec(files=30, min_bytes=512, max_bytes=65536,
                           seed=1)
        fileset = make_fileset(spec)
        assert len(fileset) == 30
        assert all(512 <= len(v) <= 65536 for v in fileset.values())

    def test_total_bytes(self):
        fileset = make_fileset(FileSetSpec(files=5, seed=2))
        assert total_bytes(fileset) == sum(len(v)
                                           for v in fileset.values())

    def test_by_extension_partitions(self):
        fileset = make_fileset(FileSetSpec(files=25, seed=5))
        groups = by_extension(fileset)
        assert sum(len(names) for names in groups.values()) == 25
        for ext, names in groups.items():
            assert all(name.endswith(ext) for name in names)

    def test_type_mix_present(self):
        fileset = make_fileset(FileSetSpec(files=80, seed=6))
        groups = by_extension(fileset)
        assert len(groups) >= 4  # a healthy mix at this size
