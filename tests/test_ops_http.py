"""Ops plane: HTTP endpoints, the stats scraper, and ``repro top``."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import main, render_top
from repro.obs.context import TraceContext
from repro.obs.flight import FLIGHT
from repro.obs.http import OpsServer
from repro.obs.trace import TRACE


class FakeStats:
    state = "running"
    accepted = 3
    completed = 2
    rejected = 1
    expired = 0
    failed = 0
    queued = 1
    queued_bytes = 512
    bytes_in = 4096
    bytes_out = 1024
    batches = 2
    per_class = {"BULK": 3}
    per_tenant = {"t0": 3}
    in_service = 0


class FakeService:
    pool = None

    def __init__(self):
        self._stats = FakeStats()

    def stats(self):
        return self._stats


def _get(base: str, path: str) -> tuple[int, str, bytes]:
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as resp:
            return resp.status, resp.headers["Content-Type"], resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers["Content-Type"], err.read()


@pytest.fixture
def telemetry():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


@pytest.fixture
def served(telemetry):
    service = FakeService()
    with OpsServer(service=service) as ops:
        yield f"http://127.0.0.1:{ops.port}", service, ops


class TestEndpoints:
    def test_metrics_is_prometheus_text(self, served):
        base, _, _ = served
        obs.registry().counter(
            "repro_service_requests_total", "requests").inc(1, op="c")
        status, ctype, body = _get(base, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "repro_service_requests_total" in body.decode()

    def test_healthz_running(self, served):
        base, _, _ = served
        status, ctype, body = _get(base, "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["service_state"] == "running"
        assert doc["queued"] == 1

    def test_healthz_draining_is_503(self, served):
        base, service, _ = served
        service._stats.state = "draining"
        status, _, body = _get(base, "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"

    def test_traces_recent_groups_by_wire_id(self, served):
        base, _, _ = served
        ctx = TraceContext.new()
        with TRACE.span("client.request", ctx=ctx):
            with TRACE.span("pool.route"):
                pass
        status, _, body = _get(base, "/traces/recent")
        assert status == 200
        doc = json.loads(body)
        trees = [t for t in doc["traces"] if t["trace_id"] == ctx.trace_id]
        assert len(trees) == 1
        (root,) = trees[0]["roots"]
        assert root["name"] == "client.request"
        assert [c["name"] for c in root["children"]] == ["pool.route"]
        assert doc["dropped_spans"] == 0

    def test_flight_exposes_ring(self, served):
        base, _, _ = served
        FLIGHT.reset()
        FLIGHT.enable()
        try:
            FLIGHT.record("service.ok", id=7)
            status, _, body = _get(base, "/flight")
            doc = json.loads(body)
            assert status == 200
            assert doc["enabled"] is True
            assert doc["capacity"] == FLIGHT.capacity
            assert any(r["kind"] == "service.ok"
                       for r in doc["records"])
        finally:
            FLIGHT.reset()

    def test_ops_aggregate(self, served):
        base, _, _ = served
        obs.registry().window(
            "repro_service_latency_window_seconds",
            "request latency").observe(0.25, qos="BULK")
        status, _, body = _get(base, "/ops")
        doc = json.loads(body)
        assert status == 200
        assert doc["uptime_s"] >= 0
        assert doc["service"]["accepted"] == 3
        assert doc["service"]["per_tenant"] == {"t0": 3}
        assert doc["breakers"] == {}
        window = doc["windows"]["repro_service_latency_window_seconds"]
        (labels, summary), = window.items()
        assert "BULK" in labels
        assert summary["count"] == 1

    def test_unknown_path_is_404(self, served):
        base, _, _ = served
        status, _, body = _get(base, "/nope")
        assert status == 404
        assert b"/metrics" in body

    def test_serverless_ops_plane_still_serves(self, telemetry):
        with OpsServer() as ops:
            base = f"http://127.0.0.1:{ops.port}"
            assert _get(base, "/healthz")[0] == 200
            doc = json.loads(_get(base, "/ops")[2])
            assert "service" not in doc


class TestCli:
    def test_stats_url_scrapes_ops_plane(self, served, capsys):
        base, _, _ = served
        assert main(["stats", "--url", base, "--format", "both"]) == 0
        out = capsys.readouterr().out
        assert '"uptime_s"' in out          # /ops JSON
        assert "# TYPE" in out or "repro_" in out or out  # /metrics text

    def test_top_once(self, served, capsys):
        base, _, _ = served
        assert main(["top", "--url", base, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "accepted 3" in out

    def test_stats_url_unreachable_is_clean_error(self, capsys):
        assert main(["stats", "--url", "http://127.0.0.1:9",
                     "--format", "json"]) != 0

    def test_render_top_includes_breakers_and_windows(self):
        ops_doc = {
            "uptime_s": 12.0,
            "service": {"state": "running", "accepted": 5,
                        "completed": 5, "rejected": 0, "expired": 0,
                        "queued": 0},
            "breakers": {"0": "CLOSED", "1": "OPEN"},
            "windows": {"repro_service_latency_window_seconds": {
                "qos=BULK": {"count": 4, "rate_per_s": 1.0,
                             "mean": 0.2, "p50": 0.1, "p99": 0.4,
                             "max": 0.5}}},
        }
        screen = render_top(ops_doc, "http://x")
        assert "chip0:CLOSED" in screen and "chip1:OPEN" in screen
        assert "repro_service_latency_window_seconds" in screen
        assert "qos=BULK" in screen
