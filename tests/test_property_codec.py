"""Property-based roundtrips across the whole codec surface."""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.compress import deflate
from repro.deflate.containers import (
    gzip_compress,
    gzip_decompress,
    zlib_compress,
    zlib_decompress,
)
from repro.deflate.inflate import inflate

_binary = st.binary(max_size=4000)
_structured = st.builds(
    lambda chunks, reps: b"".join(chunk * reps for chunk in chunks),
    st.lists(st.binary(min_size=1, max_size=40), max_size=12),
    st.integers(min_value=1, max_value=30),
)
_payload = st.one_of(_binary, _structured)


@settings(max_examples=60, deadline=None)
@given(_payload, st.sampled_from([0, 1, 5, 6, 9]))
def test_deflate_inflate_roundtrip(data, level):
    assert inflate(deflate(data, level=level).data) == data


@settings(max_examples=40, deadline=None)
@given(_payload, st.sampled_from([1, 6]))
def test_stdlib_decodes_arbitrary(data, level):
    assert zlib.decompress(deflate(data, level=level).data, -15) == data


@settings(max_examples=40, deadline=None)
@given(_payload)
def test_zlib_container_roundtrip(data):
    assert zlib_decompress(zlib_compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(_payload)
def test_gzip_container_roundtrip(data):
    assert gzip_decompress(gzip_compress(data)) == data


@settings(max_examples=30, deadline=None)
@given(_payload, st.integers(min_value=16, max_value=4096))
def test_block_split_invariance(data, block_tokens):
    """Block splitting changes framing but never content."""
    result = deflate(data, level=6, block_tokens=block_tokens)
    assert inflate(result.data) == data


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=2000))
def test_we_decode_stdlib_arbitrary(data):
    for level in (1, 9):
        assert inflate(zlib.compress(data, level)[2:-4]) == data


@settings(max_examples=30, deadline=None)
@given(_payload)
def test_compression_never_catastrophically_expands(data):
    """Stored-block fallback bounds expansion to ~5 bytes per 64 KB."""
    out = deflate(data, level=6).data
    overhead = 64 + 5 * (len(data) // 65535 + 1)
    assert len(out) <= len(data) + overhead
