"""ASCII figure renderers."""

from repro.core.plot import bar_chart, line_chart


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_contains_markers_and_legend(self):
        chart = line_chart({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]})
        assert "*" in chart
        assert "o" in chart
        assert "* a" in chart
        assert "o b" in chart

    def test_axis_labels(self):
        chart = line_chart({"s": [(0, 0), (10, 100)]}, y_label="GB/s",
                           x_label="bytes", title="ramp")
        assert chart.splitlines()[0] == "ramp"
        assert "GB/s" in chart
        assert "bytes" in chart
        assert "100" in chart  # y max
        assert "10" in chart   # x max

    def test_monotone_series_renders_monotone(self):
        """A strictly rising series never has a later point drawn on a
        lower row than an earlier one."""
        pts = [(x, x * x) for x in range(1, 9)]
        chart = line_chart({"sq": pts}, width=40, height=10)
        rows = [line for line in chart.splitlines() if "|" in line]
        positions = []
        for row_idx, row in enumerate(rows):
            for col_idx, ch in enumerate(row):
                if ch == "*":
                    positions.append((col_idx, row_idx))
        positions.sort()
        row_sequence = [r for _c, r in positions]
        assert row_sequence == sorted(row_sequence, reverse=True)

    def test_log_x_marked(self):
        chart = line_chart({"s": [(1, 1), (1024, 2)]}, log_x=True)
        assert "(log x)" in chart

    def test_flat_series_safe(self):
        chart = line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in chart


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_longest_bar_is_max(self):
        chart = bar_chart({"small": 1.0, "big": 4.0}, width=40)
        lines = {line.split("|")[0].strip(): line.count("#")
                 for line in chart.splitlines() if "|" in line}
        assert lines["big"] == 40
        assert lines["small"] == 10

    def test_values_printed(self):
        chart = bar_chart({"x": 3.25}, unit=" GB/s")
        assert "3.25 GB/s" in chart

    def test_zero_values_safe(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart
