"""Process execution layer: pools, slabs, telemetry relay, crashes."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.deflate import inflate, parallel_deflate
from repro.deflate.parallel import deflate_chunk_job
from repro.errors import ExecError, WorkerCrash
from repro.exec import (ProcessWorkerPool, SlabAllocator,
                        get_default_pool, live_segments,
                        shutdown_default_pool)
from repro.exec.shm import MIN_SLAB_BYTES, Slab, _round_capacity
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE
from repro.workloads.generators import generate


@pytest.fixture(scope="module")
def pool():
    """One warm 2-worker spawn pool shared by the module's tests."""
    p = ProcessWorkerPool(2, name="test-exec")
    p.warm()
    yield p
    p.shutdown()


# -- shared-memory slabs -----------------------------------------------------

def test_slab_round_capacity():
    assert _round_capacity(1) == MIN_SLAB_BYTES
    assert _round_capacity(MIN_SLAB_BYTES) == MIN_SLAB_BYTES
    assert _round_capacity(MIN_SLAB_BYTES + 1) == MIN_SLAB_BYTES * 2


def test_slab_tracked_until_destroyed():
    before = set(live_segments())
    slab = Slab(MIN_SLAB_BYTES)
    assert slab.name in live_segments()
    slab.write(10, b"hello")
    assert slab.read(10, 5) == b"hello"
    slab.destroy()
    slab.destroy()  # idempotent
    assert set(live_segments()) == before


def test_allocator_reuses_released_slabs():
    alloc = SlabAllocator()
    first = alloc.acquire(1000)
    name = first.name
    assert first.capacity == MIN_SLAB_BYTES
    alloc.release(first)
    assert alloc.retained_bytes == MIN_SLAB_BYTES
    again = alloc.acquire(2000)
    assert again.name == name  # same segment, no new shm_open
    alloc.release(again)
    alloc.close()
    assert alloc.retained_bytes == 0
    assert name not in live_segments()


def test_allocator_retention_cap_destroys_overflow():
    alloc = SlabAllocator(max_retained_bytes=MIN_SLAB_BYTES)
    a, b = alloc.acquire(100), alloc.acquire(100)
    alloc.release(a)
    alloc.release(b)  # over the cap: unlinked, not parked
    assert alloc.retained_bytes == MIN_SLAB_BYTES
    assert b.name not in live_segments()
    alloc.close()


# -- pool basics -------------------------------------------------------------

def test_echo_round_trip(pool):
    job = pool.submit("echo", value={"k": [1, 2, 3]})
    pool.wait([job], timeout_s=60.0)
    assert job.error is None
    assert job.result == {"k": [1, 2, 3]}


def test_run_batch_preserves_order(pool):
    results = pool.run_batch([("echo", {"value": i}) for i in range(8)],
                             timeout_s=60.0)
    assert results == list(range(8))


def test_unknown_fn_fails_cleanly(pool):
    job = pool.submit("no-such-fn")
    pool.wait([job], timeout_s=60.0)
    assert isinstance(job.error, ExecError)
    assert "no-such-fn" in str(job.error)


# -- crash handling ----------------------------------------------------------

def test_worker_crash_detected_and_respawned(pool):
    restarts = pool.worker_restarts
    job = pool.submit("crash")
    pool.wait([job], timeout_s=60.0)
    assert job.crashed
    assert isinstance(job.error, WorkerCrash)
    assert pool.worker_restarts == restarts + 1
    # The pool is still serviceable after the respawn.
    probe = pool.submit("echo", value="alive")
    pool.wait([probe], timeout_s=60.0)
    assert probe.result == "alive"


def test_run_batch_raises_when_crash_retries_exhausted(pool):
    with pytest.raises(WorkerCrash):
        pool.run_batch([("crash", {})], crash_retries=0, timeout_s=60.0)


def test_restart_cap_breaks_pool():
    p = ProcessWorkerPool(1, name="test-exec-cap")
    p.warm()
    try:
        p.restart_cap = 0
        job = p.submit("crash")
        p.wait([job], timeout_s=60.0)
        assert isinstance(job.error, (WorkerCrash, ExecError))
        assert p.broken
        with pytest.raises(ExecError):
            p.submit("echo", value=1)
    finally:
        p.shutdown()


def test_fail_job_resolves_handle_externally(pool):
    job = pool.submit("echo", value=1, delay_s=1.0)
    pool.fail_job(job, WorkerCrash("declared orphaned"))
    assert job.done
    assert isinstance(job.error, WorkerCrash)
    # The worker's eventual (stale) completion must be ignored, and the
    # pool must stay healthy.
    probe = pool.submit("echo", value=2)
    pool.wait([probe], timeout_s=60.0)
    assert probe.result == 2
    assert job.error is not None


def test_default_pool_recreated_when_broken():
    p1 = get_default_pool(1)
    p1.broken = True
    p2 = get_default_pool(1)
    assert p2 is not p1
    assert not p2.broken
    shutdown_default_pool()


# -- start-method parity -----------------------------------------------------

def test_spawn_fork_inline_output_parity():
    chunk = generate("markov_text", 40000, seed=41)
    kwargs = {"level": 6, "strategy": "default", "final": True,
              "data": chunk}
    inline = deflate_chunk_job(**kwargs)["inline"]
    for method in ("spawn", "fork"):
        p = ProcessWorkerPool(1, start_method=method,
                              name=f"test-{method}")
        try:
            record, = p.run_batch([("deflate_chunk", dict(kwargs))],
                                  timeout_s=120.0)
        finally:
            p.shutdown()
        assert record["inline"] == inline, method
    assert inflate(inline) == chunk


# -- telemetry relay ---------------------------------------------------------

def test_merge_snapshot_counters_gauges_histograms():
    src = MetricsRegistry()
    src.enabled = True
    src.counter("jobs", "n").inc(3, op="c")
    src.gauge("depth", "d").set(7)
    h = src.histogram("lat", "s", buckets=(1.0, 2.0, 4.0))
    h.observe(0.5)
    h.observe(3.0)
    h.observe(100.0)

    dst = MetricsRegistry()
    dst.enabled = True
    dst.counter("jobs", "n").inc(1, op="c")
    dst.histogram("lat", "s", buckets=(1.0, 2.0, 4.0)).observe(1.5)
    dst.merge_snapshot(src.snapshot())

    assert dst.counter("jobs").value(op="c") == 4
    assert dst.gauge("depth").value() == 7
    state = dst.histogram("lat").state()
    assert state.count == 4
    assert state.counts == [1, 1, 1, 1]  # 0.5 | 1.5 | 3.0 | inf 100.0
    assert state.sum == pytest.approx(105.0)


def test_worker_spans_fold_under_parallel_span():
    corpus = generate("markov_text", 100000, seed=42)
    obs.reset()
    obs.enable(trace=True, metrics=False)
    try:
        completed_before = get_default_pool(2).jobs_completed
        result = parallel_deflate(corpus, level=6, chunk_size=1 << 15,
                                  workers=2)
        assert inflate(result.data) == corpus
        # The pool path really ran (no silent inline fallback).
        assert get_default_pool(2).jobs_completed > completed_before
        parallel_spans = TRACE.finished("deflate.parallel")
        assert len(parallel_spans) == 1
        parent = parallel_spans[0]
        kernels = TRACE.finished("deflate.kernel")
        assert len(kernels) >= 4  # one per chunk, relayed from workers
        by_id = {s.span_id: s for s in TRACE.finished()}
        for kernel in kernels:
            assert kernel.trace_id == parent.trace_id
            node = kernel
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.span_id == parent.span_id
    finally:
        obs.disable()
        obs.reset()
        shutdown_default_pool()


def _backend_counter_families(snap: dict) -> dict:
    keep = ("repro_backend_requests_total", "repro_backend_bytes_in_total",
            "repro_backend_bytes_out_total")
    return {name: snap[name]["values"] for name in keep if name in snap}


def test_exec_counter_arithmetic_matches_serial_path():
    """Regression: the exec seam must not double- or under-count.

    The same jobs through the same pool surface — once inline, once on
    worker processes — must leave byte-identical outputs and identical
    backend counter arithmetic in the parent registry.
    """
    from repro.backend.pool import AcceleratorPool

    payloads = [generate("json_records", 8000, seed=s) for s in (1, 2, 3)]

    def run(exec_workers):
        obs.reset()
        obs.enable(trace=False, metrics=True)
        try:
            with AcceleratorPool("POWER9", chips=1, backend="software",
                                 exec_workers=exec_workers) as ap:
                jobs = [ap.submit_compress(p, strategy="auto", fmt="gzip")
                        for p in payloads]
                ap.wait_all()
                outs = [j.result.output for j in jobs]
            return outs, _backend_counter_families(obs.registry().snapshot())
        finally:
            obs.disable()
            obs.reset()

    serial_outs, serial_counters = run(exec_workers=None)
    try:
        exec_outs, exec_counters = run(exec_workers=2)
    finally:
        shutdown_default_pool()
    assert exec_outs == serial_outs
    assert serial_counters  # the serial path populated the families
    assert exec_counters == serial_counters


# -- backend-surface crash rescue --------------------------------------------

def test_accelerator_pool_rescues_crashed_worker_batch():
    """A worker killed mid-batch costs retries, never bytes."""
    from repro.backend.pool import AcceleratorPool

    exec_pool = ProcessWorkerPool(1, name="test-rescue")
    exec_pool.warm()
    payloads = [generate("markov_text", 6000, seed=s) for s in (7, 8, 9)]
    try:
        with AcceleratorPool("POWER9", chips=1, backend="software",
                             exec_pool=exec_pool) as ap:
            serial = [ap.backend_for(0).compress(
                p, strategy="auto", fmt="gzip").output for p in payloads]
            exec_pool.default_delay_s = 0.3  # jobs dwell long enough
            jobs = [ap.submit_compress(p, strategy="auto", fmt="gzip")
                    for p in payloads]
            # Kill only once a claim record has landed, so the crash
            # provably takes a claimed job with it (killing earlier just
            # replays the still-queued descriptors on the respawn).
            deadline = time.monotonic() + 30.0
            while not exec_pool._claimed:
                exec_pool.poll()
                assert time.monotonic() < deadline, "no claim arrived"
                time.sleep(0.01)
            for proc in list(exec_pool._procs.values()):
                proc.terminate()
            exec_pool.default_delay_s = None
            ap.wait_all()
            assert [j.result.output for j in jobs] == serial
            assert all(j.error is None for j in jobs)
            assert ap.stats().rescues >= 1
    finally:
        exec_pool.shutdown()
        assert exec_pool.allocator.retained_bytes == 0
