"""Cost, timing, energy, system, and adapter models."""

import pytest

from repro.nx.params import POWER9, Z15, Topology, z15_max_config
from repro.perf.cost import (
    COMPRESS_CYCLES_PER_BYTE,
    SoftwareCostModel,
    accelerator_effective_gbps,
    measure_effective_gbps,
)
from repro.perf.energy import EnergyModel
from repro.perf.io_adapter import PcieAdapterModel, compare_onchip_vs_adapter
from repro.perf.system import SystemModel, scaling_series
from repro.perf.timing import OffloadTimingModel


class TestSoftwareCost:
    def test_level6_near_20mbps(self):
        cost = SoftwareCostModel(POWER9)
        assert 15 < cost.compress_rate_mbps(6) < 25

    def test_levels_monotonically_slower(self):
        cost = SoftwareCostModel(POWER9)
        rates = [cost.compress_rate_mbps(level) for level in range(1, 10)]
        assert rates == sorted(rates, reverse=True)

    def test_decompress_much_faster_than_compress(self):
        cost = SoftwareCostModel(POWER9)
        assert cost.decompress_rate_mbps() > 5 * cost.compress_rate_mbps(6)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            SoftwareCostModel(POWER9).compress_cycles(100, level=11)

    def test_chip_rate_uses_all_threads(self):
        cost = SoftwareCostModel(POWER9)
        single = cost.compress_rate_mbps(6) / 1000
        assert cost.chip_compress_rate_gbps(6) == pytest.approx(
            single * POWER9.cores.cores * POWER9.cores.smt_scaling)

    def test_z15_cores_faster_per_thread(self):
        p9 = SoftwareCostModel(POWER9)
        z15 = SoftwareCostModel(Z15)
        assert z15.compress_rate_mbps(6) > p9.compress_rate_mbps(6)

    def test_calibration_matches_engine_model(self, text_20k):
        """The headline constant stays honest against the real model."""
        from repro.workloads.generators import generate

        sample = generate("markov_text", 262144, seed=77)
        measured = measure_effective_gbps(POWER9, sample)
        calibrated = accelerator_effective_gbps(POWER9)
        assert measured == pytest.approx(calibrated, rel=0.15)

    def test_unknown_machine_rejected(self):
        from dataclasses import replace

        fake = replace(POWER9, name="POWER11")
        with pytest.raises(ValueError):
            accelerator_effective_gbps(fake)

    def test_cpb_table_covers_levels_0_to_9(self):
        assert set(COMPRESS_CYCLES_PER_BYTE) == set(range(10))


class TestOffloadTiming:
    def test_fixed_overhead_microseconds(self):
        t = OffloadTimingModel(POWER9)
        assert 1e-6 < t.fixed_overhead_seconds() < 10e-6

    def test_latency_breakdown_totals(self):
        t = OffloadTimingModel(POWER9)
        lat = t.offload_latency(1 << 20, queue_wait=5e-6)
        assert lat.total == pytest.approx(
            lat.submit + lat.dispatch + lat.queue_wait + lat.service
            + lat.completion)
        assert lat.overhead == pytest.approx(lat.total - lat.service)

    def test_speedup_grows_with_size(self):
        t = OffloadTimingModel(POWER9)
        assert t.speedup(1 << 22) > t.speedup(1 << 12)

    def test_large_buffer_speedup_near_388(self):
        t = OffloadTimingModel(POWER9)
        assert 350 < t.speedup(8 << 20) < 420

    def test_ramp_monotone_and_saturating(self):
        t = OffloadTimingModel(POWER9)
        sizes = [1 << s for s in range(10, 25, 2)]
        ramp = t.ramp(sizes)
        values = [v for _s, v in ramp]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(t.rate_gbps, rel=0.1)

    def test_small_buffers_overhead_dominated(self):
        t = OffloadTimingModel(POWER9)
        assert t.effective_throughput_gbps(1024) < 0.5 * t.rate_gbps

    def test_break_even_small_but_positive(self):
        t = OffloadTimingModel(POWER9)
        be = t.break_even_bytes(6)
        assert 0 < be < 16384

    def test_z15_sync_overhead_lower(self):
        p9 = OffloadTimingModel(POWER9)
        z15 = OffloadTimingModel(Z15)
        assert z15.fixed_overhead_seconds() < p9.fixed_overhead_seconds()

    def test_z15_wins_more_at_small_sizes(self):
        p9 = OffloadTimingModel(POWER9)
        z15 = OffloadTimingModel(Z15)
        small_gain = (z15.effective_throughput_gbps(4096)
                      / p9.effective_throughput_gbps(4096))
        large_gain = (z15.effective_throughput_gbps(16 << 20)
                      / p9.effective_throughput_gbps(16 << 20))
        assert small_gain > large_gain


class TestSystemModel:
    def test_single_chip_rates(self):
        model = SystemModel(Topology(machine=POWER9))
        rates = model.rates()
        assert rates.chips == 1
        assert rates.accelerator_gbps == pytest.approx(7.1)
        assert 12 < rates.speedup < 14

    def test_z15_max_config_hits_280(self):
        rates = SystemModel(z15_max_config()).rates()
        assert rates.chips == 20
        assert 250 < rates.accelerator_gbps < 300

    def test_scaling_linear_in_chips(self):
        series = scaling_series(Z15, max_chips=8)
        assert series[7].accelerator_gbps == pytest.approx(
            8 * series[0].accelerator_gbps)

    def test_utilization_scales(self):
        full = SystemModel(Topology(machine=POWER9), utilization=1.0)
        half = SystemModel(Topology(machine=POWER9), utilization=0.5)
        assert half.aggregate_accelerator_gbps() == pytest.approx(
            0.5 * full.aggregate_accelerator_gbps())


class TestEnergyModel:
    def test_area_fraction_below_half_percent(self):
        assert POWER9.area_fraction < 0.005
        assert Z15.area_fraction < 0.005

    def test_energy_gain_orders_of_magnitude(self):
        gain = EnergyModel(POWER9).energy_comparison().efficiency_gain
        assert gain > 100

    def test_area_efficiency_gain_large(self):
        comp = EnergyModel(POWER9).area_comparison()
        assert comp.efficiency_gain > 100

    def test_cycles_freed_positive(self):
        assert EnergyModel(POWER9).cpu_cycles_freed_per_gb() > 1e11


class TestPcieAdapter:
    def test_onchip_beats_adapter_at_small_sizes(self):
        rows = compare_onchip_vs_adapter(POWER9, [4096, 65536])
        for _size, onchip, adapter in rows:
            assert onchip > adapter

    def test_gap_narrows_with_size(self):
        rows = compare_onchip_vs_adapter(
            POWER9, [4096, 1 << 20, 16 << 20])
        gaps = [onchip / adapter for _s, onchip, adapter in rows]
        assert gaps == sorted(gaps, reverse=True)

    def test_adapter_overhead_tens_of_microseconds(self):
        adapter = PcieAdapterModel()
        lat = adapter.offload_latency(4096)
        assert lat.submit + lat.completion > 20e-6
