"""The later-added generators (xml/csv/telemetry) and the tools script."""

from repro.deflate.compress import deflate
from repro.workloads.generators import (
    csv_table,
    generate,
    sensor_samples,
    shannon_entropy_bits_per_byte,
    xml_documents,
)


class TestXmlDocuments:
    def test_well_formed_prefix(self):
        data = xml_documents(5000, seed=1)
        assert data.startswith(b"<?xml")
        assert b"<export>" in data

    def test_compresses_well(self):
        data = generate("xml_documents", 30000, seed=2)
        assert deflate(data, 6).ratio > 3.0

    def test_deterministic(self):
        assert xml_documents(4000, seed=5) == xml_documents(4000, seed=5)


class TestCsvTable:
    def test_header_row(self):
        data = csv_table(2000, seed=1)
        first = data.split(b"\n", 1)[0]
        assert first.startswith(b"col0,col1")

    def test_column_count_configurable(self):
        data = csv_table(2000, seed=1, columns=5)
        first = data.split(b"\n", 1)[0]
        assert first.count(b",") == 4

    def test_compresses_well(self):
        data = generate("csv_table", 30000, seed=3)
        assert deflate(data, 6).ratio > 2.5


class TestSensorSamples:
    def test_high_byte_entropy_yet_compressible(self):
        """The telemetry paradox the generator is built to exhibit:
        bytes look random (high H) but deltas are small, so the matcher
        still finds structure — a little."""
        data = sensor_samples(30000, seed=4)
        assert shannon_entropy_bits_per_byte(data) > 6.5
        ratio = deflate(data, 6).ratio
        assert 1.05 < ratio < 2.0

    def test_sample_continuity(self):
        data = sensor_samples(2000, seed=5)
        values = [int.from_bytes(data[i:i + 2], "big")
                  for i in range(0, len(data) - 1, 2)]
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(deltas) <= 64

    def test_exact_odd_size(self):
        assert len(sensor_samples(1001, seed=1)) == 1001


class TestCollectResults:
    def test_report_builds(self, tmp_path, monkeypatch):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "collect_results",
            pathlib.Path("tools/collect_results.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        # Point at a temp results dir with one table.
        monkeypatch.setattr(module, "RESULTS", tmp_path)
        (tmp_path / "e1_demo.txt").write_text("demo table\n1 2 3\n")
        report = module.build_report()
        assert "## e1_demo" in report
        assert "demo table" in report

    def test_empty_results_dir(self, tmp_path, monkeypatch):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "collect_results",
            pathlib.Path("tools/collect_results.py"))
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS", tmp_path / "missing")
        assert "no results yet" in module.build_report()
