"""CRB / CSB / function-code serialization."""

import pytest

from repro.errors import JobError
from repro.sysstack.crb import (
    CRB_BYTES,
    CSB_BYTES,
    CcCode,
    Crb,
    Csb,
    FunctionCode,
    Op,
)
from repro.sysstack.dde import Dde


class TestFunctionCode:
    @pytest.mark.parametrize("op", list(Op))
    @pytest.mark.parametrize("strategy",
                             ["fixed", "dynamic", "canned", "auto"])
    @pytest.mark.parametrize("fmt", ["raw", "zlib", "gzip"])
    def test_roundtrip(self, op, strategy, fmt):
        fc = FunctionCode(op=op, strategy=strategy, fmt=fmt)
        assert FunctionCode.decode(fc.encode()) == fc

    def test_bad_strategy_rejected(self):
        with pytest.raises(JobError):
            FunctionCode(op=Op.COMPRESS, strategy="lzma").encode()

    def test_bad_format_rejected(self):
        with pytest.raises(JobError):
            FunctionCode(op=Op.COMPRESS, fmt="bz2").encode()

    def test_bad_op_decode_rejected(self):
        with pytest.raises(JobError):
            FunctionCode.decode(0xFFFF)


class TestCsb:
    def test_roundtrip(self):
        csb = Csb(valid=True, cc=CcCode.TRANSLATION,
                  processed_bytes=1234, target_written=567,
                  fault_address=0xDEAD000)
        packed = csb.pack()
        assert len(packed) == CSB_BYTES
        assert Csb.unpack(packed) == csb

    def test_default_is_invalid(self):
        assert not Csb().valid

    def test_unpack_ignores_trailing_bytes(self):
        csb = Csb(valid=True, cc=CcCode.SUCCESS)
        assert Csb.unpack(csb.pack() + b"extra") == csb


class TestCrb:
    def _sample(self) -> Crb:
        return Crb(
            function=FunctionCode(op=Op.COMPRESS, strategy="dynamic",
                                  fmt="gzip"),
            source=Dde.direct(0x10000, 4096),
            target=Dde.direct(0x20000, 8192),
            csb_address=0x30000,
            sequence=7,
        )

    def test_packs_to_128_bytes(self):
        assert len(self._sample().pack()) == CRB_BYTES

    def test_roundtrip(self):
        crb = self._sample()
        restored = Crb.unpack(crb.pack())
        assert restored.function == crb.function
        assert restored.csb_address == crb.csb_address
        assert restored.sequence == crb.sequence
        assert restored.source.address == crb.source.address
        assert restored.source.length == crb.source.length
        assert restored.target.address == crb.target.address

    def test_indirect_flag_survives(self):
        crb = self._sample()
        crb.source = Dde.gather([(0x1000, 100), (0x3000, 200)],
                                list_address=0x5000)
        restored = Crb.unpack(crb.pack())
        assert restored.source.indirect
        assert restored.source._entry_count == 2

    def test_unpack_wrong_size_rejected(self):
        with pytest.raises(JobError):
            Crb.unpack(b"\x00" * 64)

    def test_cc_codes_cover_documented_set(self):
        assert CcCode.SUCCESS == 0
        assert CcCode.TRANSLATION == 65
        assert CcCode.TARGET_SPACE == 66
