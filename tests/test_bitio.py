"""Unit tests for the LSB-first bit reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.deflate.bitio import BitReader, BitWriter
from repro.errors import DeflateError


class TestBitWriter:
    def test_single_bits_pack_lsb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bits(bit, 1)
        assert w.getvalue() == bytes([0b10001101])

    def test_multi_bit_value(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b11111, 5)
        assert w.getvalue() == bytes([0b11111101])

    def test_value_masked_to_width(self):
        w = BitWriter()
        w.write_bits(0xFFFF, 4)  # only 4 low bits kept
        assert w.getvalue() == bytes([0x0F])

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits(1, 1)
        w.align_to_byte()
        w.write_bits(1, 1)
        assert w.getvalue() == bytes([0x01, 0x01])

    def test_align_on_boundary_is_noop(self):
        w = BitWriter()
        w.write_bits(0xAB, 8)
        w.align_to_byte()
        assert w.getvalue() == bytes([0xAB])

    def test_write_bytes_requires_alignment(self):
        w = BitWriter()
        w.write_bits(1, 1)
        with pytest.raises(DeflateError):
            w.write_bytes(b"zz")

    def test_write_bytes_when_aligned(self):
        w = BitWriter()
        w.write_bytes(b"ab")
        assert w.getvalue() == b"ab"

    def test_bit_length_tracks_partial_bytes(self):
        w = BitWriter()
        assert w.bit_length == 0
        w.write_bits(0, 3)
        assert w.bit_length == 3
        w.write_bits(0, 8)
        assert w.bit_length == 11

    def test_width_out_of_range_rejected(self):
        w = BitWriter()
        with pytest.raises(DeflateError):
            w.write_bits(0, 65)
        with pytest.raises(DeflateError):
            w.write_bits(0, -1)


class TestBitReader:
    def test_reads_back_lsb_first(self):
        r = BitReader(bytes([0b10001101]))
        assert [r.read_bits(1) for _ in range(8)] == [1, 0, 1, 1, 0, 0, 0, 1]

    def test_multibit_read(self):
        r = BitReader(bytes([0b11111101]))
        assert r.read_bits(3) == 0b101
        assert r.read_bits(5) == 0b11111

    def test_read_past_end_raises(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(DeflateError):
            r.read_bits(1)

    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0xA5]))
        assert r.peek_bits(4) == 0x5
        assert r.peek_bits(4) == 0x5
        assert r.read_bits(8) == 0xA5

    def test_peek_past_end_pads_zero(self):
        r = BitReader(bytes([0x01]))
        assert r.peek_bits(16) == 0x0001

    def test_skip_after_peek(self):
        r = BitReader(bytes([0b11110000]))
        r.peek_bits(8)
        r.skip_bits(4)
        assert r.read_bits(4) == 0b1111

    def test_skip_more_than_buffered_raises(self):
        r = BitReader(b"")
        with pytest.raises(DeflateError):
            r.skip_bits(1)

    def test_align_then_read_bytes(self):
        r = BitReader(bytes([0xFF, 0x42, 0x43]))
        r.read_bits(3)
        r.align_to_byte()
        assert r.read_bytes(2) == b"\x42\x43"

    def test_read_bytes_uses_buffered_bits(self):
        r = BitReader(b"ABCD")
        r.peek_bits(9)  # buffers two bytes
        assert r.read_bytes(3) == b"ABC"
        assert r.read_bytes(1) == b"D"

    def test_read_bytes_unaligned_raises(self):
        r = BitReader(b"AB")
        r.read_bits(1)
        with pytest.raises(DeflateError):
            r.read_bytes(1)

    def test_bits_consumed(self):
        r = BitReader(b"AB")
        r.read_bits(5)
        assert r.bits_consumed == 5
        r.read_bits(6)
        assert r.bits_consumed == 11

    def test_start_offset(self):
        r = BitReader(b"\xff\x00", start=1)
        assert r.read_bits(8) == 0


class TestRoundtrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2 ** 16),
                              st.integers(min_value=1, max_value=16)),
                    max_size=200))
    def test_writer_reader_roundtrip(self, fields):
        w = BitWriter()
        for value, width in fields:
            w.write_bits(value, width)
        r = BitReader(w.getvalue())
        for value, width in fields:
            assert r.read_bits(width) == value & ((1 << width) - 1)
