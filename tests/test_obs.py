"""Observability layer: spans, metrics, exporters, and overhead guards."""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro import obs
from repro.backend import AcceleratorPool
from repro.backend.nx_async import NxAsyncBackend
from repro.cli import main
from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate
from repro.nx.params import POWER9
from repro.nx.selftest import run_selftest
from repro.obs.export import spans_to_chrome_trace, spans_to_jsonl
from repro.obs.metrics import (LATENCY_BUCKETS, MetricsRegistry,
                               record_job)
from repro.obs.trace import NULL_SPAN, TRACE, Tracer


@pytest.fixture
def telemetry():
    """Enable the global obs layer for one test, then restore it."""
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


def _roots(tracer):
    return [s for s in tracer.finished() if s.parent_id is None]


def _children(tracer, span):
    return [s for s in tracer.finished()
            if s.parent_id == span.span_id]


# -- span tree shape ---------------------------------------------------------

class TestSpanTree:
    def test_compress_job_span_hierarchy(self, telemetry, text_20k):
        backend = NxAsyncBackend(POWER9)
        try:
            backend.compress(text_20k)
        finally:
            backend.close()
        tracer = obs.tracer()
        roots = _roots(tracer)
        assert [r.name for r in roots] == ["backend.submit"]
        root = roots[0]
        assert root.attrs["op"] == "compress"
        child_names = {s.name for s in _children(tracer, root)}
        assert {"vas.paste", "engine.run", "csb.complete"} <= child_names
        (engine_run,) = [s for s in _children(tracer, root)
                         if s.name == "engine.run"]
        engine_children = {s.name for s in _children(tracer, engine_run)}
        assert {"engine.match", "engine.huffman",
                "engine.emit"} <= engine_children

    def test_faulting_job_records_fault_and_resubmit(self, telemetry,
                                                     text_20k):
        # Mirrors test_driver's seed scan: find a run where at least one
        # translation fault fires, then check the span-level record of
        # the retry agrees with the driver's own accounting.
        for seed in range(40):
            obs.tracer().reset()
            backend = NxAsyncBackend(POWER9, fault_probability=0.05,
                                     seed=seed)
            try:
                result = backend.compress(text_20k)
            finally:
                backend.close()
            if result.stats.translation_faults:
                break
        else:
            pytest.fail("no fault fired across seeds")

        tracer = obs.tracer()
        completes = tracer.finished("csb.complete")
        assert len(completes) == result.stats.submissions
        fault_events = [e for s in completes for e in s.events
                        if e.name == "fault.translation"]
        resubmits = [e for s in completes for e in s.events
                     if e.name == "resubmit"]
        assert len(fault_events) == result.stats.translation_faults
        assert len(resubmits) >= len(fault_events)
        assert all("address" in e.attrs for e in fault_events)
        # The job still succeeded: exactly one submit root, no fallback.
        assert not result.stats.fallback_to_software
        assert len(_roots(tracer)) == 1

    def test_pool_route_span_and_dispatch_metrics(self, telemetry,
                                                  text_20k):
        with AcceleratorPool(POWER9, chips=2, policy="round_robin") as pool:
            pool.compress(text_20k)
            pool.compress(text_20k)
        tracer = obs.tracer()
        routes = tracer.finished("pool.route")
        assert len(routes) == 2
        assert {s.attrs["chip"] for s in routes} == {0, 1}
        assert all(s.attrs["policy"] == "round_robin" for s in routes)
        counter = obs.registry().get("repro_pool_dispatch_total")
        assert counter is not None
        assert counter.value(chip="0") == 1.0
        assert counter.value(chip="1") == 1.0

    def test_api_span_is_the_root_for_sessions(self, telemetry,
                                               text_20k):
        from repro.core.api import NxGzip

        with NxGzip(POWER9) as session:
            session.compress(text_20k)
        tracer = obs.tracer()
        roots = _roots(tracer)
        assert [r.name for r in roots] == ["api.compress"]
        child_names = {s.name for s in _children(tracer, roots[0])}
        assert "backend.submit" in child_names

    def test_trace_tree_groups_by_parent(self, telemetry):
        with TRACE.span("outer") as outer:
            with TRACE.span("inner.a"):
                pass
            with TRACE.span("inner.b"):
                pass
        tree = TRACE.trace_tree(outer.trace_id)
        assert [s.name for s in tree[None]] == ["outer"]
        assert sorted(s.name for s in tree[outer.span_id]) \
            == ["inner.a", "inner.b"]


# -- metrics registry --------------------------------------------------------

class TestMetrics:
    def test_histogram_bucket_edges_are_inclusive(self):
        reg = MetricsRegistry()
        hist = reg.histogram("x_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            hist.observe(value)
        state = hist.state()
        # le-style buckets: a value equal to an edge lands in that edge's
        # bucket; 9.0 overflows to +Inf.
        assert state.counts == [2, 2, 1, 1]
        assert state.count == 6
        assert state.sum == pytest.approx(18.0)

    def test_prometheus_histogram_is_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_t_seconds", "help text",
                             buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            hist.observe(value, op="compress")
        text = reg.to_prometheus()
        assert '# TYPE repro_t_seconds histogram' in text
        assert 'repro_t_seconds_bucket{op="compress",le="1"} 1' in text
        assert 'repro_t_seconds_bucket{op="compress",le="2"} 2' in text
        assert 'repro_t_seconds_bucket{op="compress",le="+Inf"} 3' in text
        assert 'repro_t_seconds_count{op="compress"} 3' in text

    def test_json_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "things").inc(3, chip="0")
        reg.gauge("repro_x_depth").set(2.5)
        reg.histogram("repro_x_seconds",
                      buckets=LATENCY_BUCKETS).observe(1e-4)
        snap = json.loads(reg.to_json())
        assert snap == reg.snapshot()
        assert snap["repro_x_total"]["type"] == "counter"
        assert snap["repro_x_total"]["values"] == [
            {"labels": {"chip": "0"}, "value": 3.0}]
        assert snap["repro_x_seconds"]["bucket_edges"] \
            == list(LATENCY_BUCKETS)

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("repro_x_total")

    def test_record_job_folds_all_families(self):
        # record_job writes to the global registry; swap a fresh family
        # dict in so the test observes exactly what one call creates.
        registry = obs.registry()
        saved = registry._metrics
        registry._metrics = {}
        try:
            record_job("backend", op="compress", nbytes_in=1000,
                       nbytes_out=250, seconds=1e-3, faults=2,
                       fallback=True, backend="nx")
            names = set(registry.names())
            faults = registry.get("repro_backend_faults_total")
            assert faults.value(backend="nx") == 2.0
            ratio = registry.get("repro_backend_ratio")
            assert ratio.state(backend="nx").count == 1
        finally:
            registry._metrics = saved
        assert "repro_backend_requests_total" in names
        assert "repro_backend_bytes_in_total" in names
        assert "repro_backend_job_seconds" in names
        assert "repro_backend_fallbacks_total" in names

    def test_selftest_publishes_pass_gauge(self, telemetry):
        report = run_selftest(POWER9)
        assert report.passed
        gauge = obs.registry().get("repro_nx_selftest_pass")
        assert gauge is not None
        assert gauge.value(machine=POWER9.name, engine="compress") == 1.0
        assert gauge.value(machine=POWER9.name, engine="decompress") == 1.0


# -- exporters ---------------------------------------------------------------

class TestExport:
    def test_chrome_trace_schema(self, telemetry, text_20k, tmp_path):
        backend = NxAsyncBackend(POWER9)
        try:
            backend.compress(text_20k)
        finally:
            backend.close()
        path = obs.export_chrome_trace(tmp_path / "run.trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for event in events:
            assert isinstance(event["name"], str)
            assert event["pid"] == 1
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert "span_id" in event["args"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"backend.submit", "vas.paste", "engine.run",
                "csb.complete"} <= names
        assert any(e["ph"] == "M" and e["name"] == "process_name"
                   for e in events)

    def test_spans_jsonl_one_object_per_line(self, telemetry):
        with TRACE.span("a", nbytes=1):
            pass
        with TRACE.span("b"):
            pass
        lines = spans_to_jsonl(TRACE.finished()).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a"
        assert first["attrs"] == {"nbytes": 1}
        assert first["duration_s"] >= 0

    def test_chrome_trace_instant_events(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("csb.complete") as span:
            span.event("fault.translation", address=4096)
        doc = spans_to_chrome_trace(tracer.finished(),
                                    tracer.epoch_perf_s)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "fault.translation"
        assert instants[0]["args"] == {"address": 4096}


# -- disabled-path cost and parity -------------------------------------------

class TestDisabledPath:
    def test_disabled_span_is_shared_null_singleton(self):
        assert not obs.tracing_enabled()
        assert TRACE.span("engine.run", nbytes=1) is NULL_SPAN
        assert TRACE.span("anything") is NULL_SPAN
        assert NULL_SPAN.set(x=1) is NULL_SPAN
        NULL_SPAN.event("fault.translation")  # no-op, must not raise
        assert TRACE.finished() == []

    def test_disabled_span_allocates_nothing_in_tracer(self):
        assert not obs.tracing_enabled()
        TRACE.span("warmup")  # pay any lazy initialisation up front
        tracemalloc.start()
        try:
            for _ in range(200):
                TRACE.span("engine.run", nbytes=1)
                TRACE.event("fault.translation", address=0)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        from repro.obs import trace as trace_module
        in_tracer = snapshot.filter_traces(
            [tracemalloc.Filter(True, trace_module.__file__)])
        assert sum(s.size for s in in_tracer.statistics("lineno")) == 0

    def test_golden_parity_with_tracing_on_and_off(self, text_20k,
                                                   json_20k):
        for payload in (text_20k, json_20k, b"", b"x" * 5):
            obs.disable()
            plain = deflate(payload, level=6).data
            obs.enable()
            try:
                traced = deflate(payload, level=6).data
            finally:
                obs.disable()
                obs.reset()
            assert traced == plain
            assert inflate(plain) == payload


# -- CLI ---------------------------------------------------------------------

class TestCli:
    @pytest.fixture
    def sample_file(self, tmp_path, text_20k):
        path = tmp_path / "sample.txt"
        path.write_bytes(text_20k)
        return path

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        yield
        obs.disable()
        obs.reset()

    def test_trace_flag_writes_chrome_trace(self, sample_file, tmp_path,
                                            capsys):
        out = tmp_path / "cli.trace.json"
        assert main(["--trace", "--trace-out", str(out),
                     "compress", str(sample_file)]) == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert {"pool.route", "backend.submit", "vas.paste",
                "engine.run", "csb.complete"} <= names
        assert out.with_suffix(".spans.jsonl").exists()
        assert "trace:" in capsys.readouterr().out

    def test_metrics_flag_prints_prometheus(self, sample_file, capsys):
        assert main(["--metrics", "compress", str(sample_file)]) == 0
        captured = capsys.readouterr().out
        assert "repro_backend_requests_total" in captured
        assert "repro_pool_dispatch_total" in captured
        assert "repro_backend_job_seconds_bucket" in captured

    def test_stats_command_prints_json_and_prometheus(self, capsys):
        assert main(["stats", "--machine", "POWER9"]) == 0
        captured = capsys.readouterr().out
        assert "repro_nx_selftest_pass" in captured
        # --format both: JSON object plus Prometheus exposition text.
        assert '"repro_nx_selftest_pass"' in captured
        assert "# TYPE repro_nx_selftest_pass gauge" in captured
