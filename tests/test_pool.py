"""AcceleratorPool routing, batch submission, and driver-session safety."""

from __future__ import annotations

import gzip as stdlib_gzip

import pytest

from repro.backend import SOFTWARE, AcceleratorPool
from repro.errors import ConfigError
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9, Z15
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace
from repro.workloads.generators import generate


# -- routing policies --------------------------------------------------------

def test_round_robin_spreads_evenly(text_20k):
    with AcceleratorPool(POWER9, chips=3, policy="round_robin") as pool:
        for _ in range(6):
            result = pool.compress(text_20k)
            assert stdlib_gzip.decompress(result.output) == text_20k
        assert pool.dispatch_counts == [2, 2, 2]
        assert pool.software_jobs == 0


def test_least_loaded_balances_bytes():
    big = generate("json_records", 65536, seed=5)
    small = generate("json_records", 4096, seed=6)
    with AcceleratorPool(POWER9, chips=2, policy="least_loaded") as pool:
        pool.compress(big, home=0)       # chip 0 now carries 64 KB
        pool.compress(small, home=0)     # should prefer idle chip 1
        assert pool.dispatch_counts == [1, 1]


def test_size_threshold_routes_small_jobs_to_software(text_20k):
    small = b"tiny payload"
    with AcceleratorPool(POWER9, chips=2, policy="size_threshold",
                         software_threshold=16384) as pool:
        assert pool.route(len(small)) == SOFTWARE
        pool.compress(small)
        pool.compress(text_20k)
        assert pool.software_jobs == 1
        assert sum(pool.dispatch_counts) == 1
        assert pool.stats().requests == 2


def test_local_policy_pins_to_home(text_20k):
    with AcceleratorPool(POWER9, chips=3, policy="local") as pool:
        for _ in range(3):
            pool.compress(text_20k, home=1)
        assert pool.dispatch_counts == [0, 3, 0]


def test_pool_validates_configuration():
    with pytest.raises(ConfigError, match="policy"):
        AcceleratorPool(POWER9, chips=2, policy="weighted")
    with pytest.raises(ConfigError, match="chip"):
        AcceleratorPool(POWER9, chips=0)


def test_pool_over_dfltcc_backend(text_20k):
    """Synchronous backends work behind the same pool surface."""
    with AcceleratorPool(Z15, chips=2, policy="round_robin") as pool:
        assert pool.backend_name == "dfltcc"
        jobs = [pool.submit_compress(text_20k) for _ in range(4)]
        results = pool.wait_all()
        assert all(job.done for job in jobs)
        assert [stdlib_gzip.decompress(r.output) for r in results] \
            == [text_20k] * 4
        assert pool.dispatch_counts == [2, 2]


# -- asynchronous batch submission -------------------------------------------

def test_batch_submission_preserves_order():
    payloads = [generate("markov_text", 8192 + 1024 * i, seed=20 + i)
                for i in range(6)]
    with AcceleratorPool(POWER9, chips=3, policy="round_robin") as pool:
        jobs = [pool.submit_compress(data) for data in payloads]
        assert pool.in_flight == 6
        results = pool.wait_all()
        assert pool.in_flight == 0
        assert all(job.done for job in jobs)
        for data, result in zip(payloads, results):
            assert stdlib_gzip.decompress(result.output) == data


def test_poll_drains_incrementally(text_20k):
    with AcceleratorPool(POWER9, chips=2, policy="round_robin") as pool:
        pool.submit_compress(text_20k)
        pool.submit_compress(text_20k)
        finished = pool.poll()
        # The modelled drain completes pasted work, so poll returns jobs
        # with results attached and accounted.
        assert all(job.result is not None for job in finished)
        pool.wait_all()
        assert pool.stats().requests == 2


# -- capacity planning (DES view of the same policies) ------------------------

@pytest.mark.parametrize("policy", ["round_robin", "least_loaded"])
def test_simulate_load_runs_per_policy(policy):
    pool = AcceleratorPool(POWER9, chips=4, policy=policy)
    result = pool.simulate_load([0.9, 0.1, 0.1, 0.1], duration_s=0.05)
    assert result.jobs
    assert result.mean_latency > 0.0
    assert result.throughput_gbps > 0.0
    pool.close()


def test_simulate_load_rejects_size_threshold():
    pool = AcceleratorPool(POWER9, chips=2, policy="size_threshold")
    with pytest.raises(ConfigError, match="size_threshold"):
        pool.simulate_load([0.5, 0.5], duration_s=0.01)
    pool.close()


# -- driver session safety (idempotent open / repeat-safe close) --------------

def test_driver_open_is_idempotent():
    accelerator = NxAccelerator(POWER9)
    driver = NxDriver(accelerator, AddressSpace())
    driver.open()
    window_id = driver._window_id
    assert len(accelerator.vas.windows) == 1
    driver.open()                       # no second window, same id
    assert driver._window_id == window_id
    assert len(accelerator.vas.windows) == 1
    driver.close()
    assert len(accelerator.vas.windows) == 0
    driver.close()                      # repeat close is a no-op
    assert len(accelerator.vas.windows) == 0


def test_driver_reopen_after_close_allocates_fresh_window():
    accelerator = NxAccelerator(POWER9)
    driver = NxDriver(accelerator, AddressSpace())
    driver.open()
    driver.close()
    driver.open()
    assert len(accelerator.vas.windows) == 1
    driver.close()
