"""Fleet TCO model."""

from dataclasses import replace

import pytest

from repro.nx.params import POWER9, Z15
from repro.perf.tco import FleetAssumptions, TcoModel


@pytest.fixture
def model():
    return TcoModel(POWER9)


class TestStorageSavings:
    def test_formula(self, model):
        a = model.assumptions
        expected = (a.compressed_tb_per_day * 30
                    * (1 - 1 / a.compression_ratio)
                    * a.storage_usd_per_tb_month)
        assert model.storage_savings_usd_per_month() == pytest.approx(
            expected)

    def test_ratio_one_saves_nothing(self):
        model = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compression_ratio=1.0))
        assert model.storage_savings_usd_per_month() == 0.0

    def test_better_ratio_saves_more(self):
        low = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compression_ratio=2.0))
        high = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compression_ratio=4.0))
        assert (high.storage_savings_usd_per_month()
                > low.storage_savings_usd_per_month())


class TestCoreHours:
    def test_scale_with_volume(self):
        small = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compressed_tb_per_day=10))
        large = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compressed_tb_per_day=100))
        assert large.core_hours_returned_per_month() == pytest.approx(
            10 * small.core_hours_returned_per_month())

    def test_z15_cores_cheaper_to_replace(self):
        """Faster cores burn fewer hours for the same bytes."""
        p9 = TcoModel(POWER9).core_hours_returned_per_month()
        z15 = TcoModel(Z15).core_hours_returned_per_month()
        assert z15 < p9

    def test_magnitude_sane(self, model):
        # 100 TB/day at ~18 MB/s/core ~ 45 k core-hours/month.
        hours = model.core_hours_returned_per_month()
        assert 1e4 < hours < 1e6


class TestAdapters:
    def test_at_least_one(self):
        tiny = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compressed_tb_per_day=0.1))
        assert tiny.adapters_avoided() == 1

    def test_grow_with_volume(self, model):
        big = TcoModel(POWER9, assumptions=replace(
            FleetAssumptions(), compressed_tb_per_day=5000))
        assert big.adapters_avoided() > model.adapters_avoided()

    def test_report_composition(self, model):
        rep = model.report()
        assert rep.recurring_usd_per_month == pytest.approx(
            rep.storage_usd_per_month + rep.core_usd_per_month
            + rep.adapter_power_usd_per_month)
        assert rep.adapter_capex_usd == pytest.approx(
            rep.adapters_avoided
            * model.assumptions.adapter.card_cost_usd)

    def test_accelerators_needed_context(self, model):
        assert model.accelerators_needed() >= 1
