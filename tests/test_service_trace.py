"""End-to-end distributed tracing across client, service, and workers.

The acceptance path for the observability plane: one job submitted
through :class:`ServiceClient` against a served fleet with process
workers must come out of the exporter as a *single* trace tree —
client → service.request → service.batch → pool.route → worker.job →
kernel — under the client's wire trace id, and the exec layer must fold
worker telemetry exactly once even when a worker crashes mid-job and
the job is resubmitted.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.deflate.inflate import inflate
from repro.exec import ProcessWorkerPool, shutdown_default_pool
from repro.obs.export import spans_to_trees
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE
from repro.service import ServiceClient
from repro.service.core import CompressionService
from repro.service.server import serve
from repro.workloads.generators import generate

#: Span names the single served trace must nest, client to kernel.
CHAIN = {"client.request", "service.request", "service.batch",
         "pool.route", "worker.job", "backend.submit"}


def crash_once_counting(marker: str, value: object = None) -> object:
    """Worker fn: bump a counter, crash on the first call, then succeed.

    The first call's counter increment dies with the worker process
    (its completion record is never sent), so the parent must see the
    counter exactly once — from the successful resubmission — if the
    fold-once guarantee holds.
    """
    from repro.obs.metrics import REGISTRY
    REGISTRY.counter("repro_exec_probe_calls_total",
                     "test worker invocations").inc(1)
    if os.path.exists(marker):
        return value
    with open(marker, "w"):
        pass
    os._exit(13)


#: Submitted by its fully qualified ``module:attr`` name — spawn
#: workers import it themselves; nothing to register.
PROBE_FN = "tests.test_service_trace:crash_once_counting"


def _names(node: dict, out: set) -> set:
    out.add(node["name"])
    for child in node.get("children", ()):
        _names(child, out)
    return out


@pytest.fixture
def telemetry():
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


class TestServedTrace:
    def test_single_wire_trace_client_to_worker(self, telemetry):
        """The acceptance criterion: one tree, one root, whole chain."""
        payload = generate("markov_text", 40000, seed=11)
        service = CompressionService(machine="POWER9", chips=1,
                                     backend="software", exec_workers=2)
        server = serve(service)
        try:
            with ServiceClient(port=server.port) as client:
                result = client.compress(payload, fmt="raw")
            assert inflate(result.output) == payload
            assert result.traceparent is not None
            wire_id = result.traceparent.split("-")[1]

            trees = [t for t in spans_to_trees(TRACE.finished())
                     if t["trace_id"] == wire_id]
            assert len(trees) == 1, "client job must form one trace"
            tree = trees[0]
            assert len(tree["roots"]) == 1, \
                "every hop must re-parent under the client span"
            root = tree["roots"][0]
            assert root["name"] == "client.request"
            names = _names(root, set())
            assert CHAIN <= names, f"missing {CHAIN - names}"
        finally:
            server.shutdown()
            service.close()
            shutdown_default_pool()

    def test_malformed_traceparent_still_serves(self, telemetry):
        """A garbage wire header degrades to a local trace, never an
        error (tolerant-reader rule from docs/protocol.md)."""
        payload = generate("json_records", 9000, seed=3)
        with CompressionService(chips=1, backend="software") as svc:
            ticket = svc.submit("compress", payload, fmt="raw",
                                traceparent="not-a-traceparent")
            assert inflate(ticket.wait(30.0).output) == payload


class TestFoldExactlyOnce:
    def test_crash_retry_folds_spans_and_counters_once(self, telemetry,
                                                       tmp_path):
        """After a worker crash + resubmit, exactly one worker.job span
        and exactly one counter increment reach the parent."""
        pool = ProcessWorkerPool(2, name="test-fold-once")
        try:
            (value,) = pool.run_batch(
                [(PROBE_FN,
                  {"marker": str(tmp_path / "latch"), "value": 42})],
                crash_retries=2, timeout_s=120.0, metrics=True)
            assert value == 42
            jobs = TRACE.finished("worker.job")
            assert len(jobs) == 1, \
                f"expected one folded worker.job, got {len(jobs)}"
            counter = obs.registry().get("repro_exec_probe_calls_total")
            assert counter is not None
            (sample,) = counter.snapshot_values()
            assert sample["value"] == 1
        finally:
            pool.shutdown()

    def test_merge_snapshot_adds_counters(self):
        """merge_snapshot is additive — exactly-once therefore depends
        on the exec layer folding each completion record once, which
        the crash test above exercises end to end."""
        src = MetricsRegistry()
        src.enabled = True
        src.counter("repro_exec_probe_calls_total", "calls").inc(3)
        snap = src.snapshot()
        dst = MetricsRegistry()
        dst.enabled = True
        dst.merge_snapshot(snap)
        dst.merge_snapshot(snap)
        (sample,) = dst.get(
            "repro_exec_probe_calls_total").snapshot_values()
        assert sample["value"] == 6

    def test_nested_relayed_spans_keep_structure_across_fold(
            self, telemetry):
        """A worker's nested span dump folds into the parent with its
        internal parent/child edges intact and fresh local ids."""
        worker = obs.trace.Tracer()
        worker.enable()
        with worker.span("worker.job", pid=1):
            with worker.span("backend.submit"):
                with worker.span("deflate.kernel"):
                    pass
        records = [span.to_dict() for span in worker.finished()]
        with TRACE.span("pool.route") as route:
            pass
        folded = TRACE.fold(records, parent=route)
        by_name = {span.name: span for span in folded}
        assert by_name["worker.job"].parent_id == route.span_id
        assert by_name["backend.submit"].parent_id == \
            by_name["worker.job"].span_id
        assert by_name["deflate.kernel"].parent_id == \
            by_name["backend.submit"].span_id
        old_ids = {record["span_id"] for record in records}
        assert all(span.span_id not in old_ids for span in folded), \
            "folded spans must take fresh local ids"
