"""Discrete-event simulation kernel."""

import pytest

from repro.perf.des import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        handle = sim.schedule(4.0, lambda: None)
        assert sim.peek_time() == 4.0
        sim.cancel(handle)
        assert sim.peek_time() is None

    def test_event_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5
