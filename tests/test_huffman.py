"""Canonical Huffman construction, encode/decode, and code properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.deflate.bitio import BitReader, BitWriter
from repro.deflate.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    canonical_codes,
    kraft_sum,
    limited_code_lengths,
)
from repro.errors import HuffmanError


class TestLimitedCodeLengths:
    def test_empty_alphabet(self):
        assert limited_code_lengths([0, 0, 0], 15) == [0, 0, 0]

    def test_single_symbol_gets_one_bit(self):
        assert limited_code_lengths([0, 7, 0], 15) == [0, 1, 0]

    def test_two_symbols(self):
        assert limited_code_lengths([3, 5], 15) == [1, 1]

    def test_skewed_frequencies_give_skewed_lengths(self):
        lengths = limited_code_lengths([1000, 10, 10, 1], 15)
        assert lengths[0] < lengths[3]

    def test_respects_max_length(self):
        # Exponential frequencies would want very long codes.
        freqs = [2 ** i for i in range(20)]
        lengths = limited_code_lengths(freqs, 7)
        assert max(lengths) <= 7
        assert kraft_sum(lengths) <= 1.0 + 1e-12

    def test_kraft_complete_for_many_symbols(self):
        freqs = [i % 17 + 1 for i in range(100)]
        lengths = limited_code_lengths(freqs, 15)
        assert kraft_sum(lengths) == pytest.approx(1.0)

    def test_too_many_symbols_for_bound(self):
        with pytest.raises(HuffmanError):
            limited_code_lengths([1] * 9, 3)

    def test_deterministic(self):
        freqs = [5, 5, 5, 5, 3, 3, 1]
        assert (limited_code_lengths(freqs, 15)
                == limited_code_lengths(freqs, 15))

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=64))
    def test_kraft_inequality_always_holds(self, freqs):
        lengths = limited_code_lengths(freqs, 15)
        assert kraft_sum(lengths) <= 1.0 + 1e-12
        used = sum(1 for f in freqs if f)
        coded = sum(1 for length in lengths if length)
        assert coded == used

    @given(st.lists(st.integers(min_value=1, max_value=1000),
                    min_size=2, max_size=32))
    def test_optimality_vs_unbounded_within_bound(self, freqs):
        """With a loose bound the result is a true Huffman code: its cost
        matches an independently computed optimal-tree cost."""
        import heapq

        lengths = limited_code_lengths(freqs, 32)
        cost = sum(f * l for f, l in zip(freqs, lengths))

        heap = [(f, i) for i, f in enumerate(freqs)]
        heapq.heapify(heap)
        depth_cost = 0
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            depth_cost += a[0] + b[0]
            heapq.heappush(heap, (a[0] + b[0], -1))
        assert cost == depth_cost


class TestCanonicalCodes:
    def test_rfc_example(self):
        # RFC 1951 section 3.2.2 example: lengths (3,3,3,3,3,2,4,4).
        lengths = [3, 3, 3, 3, 3, 2, 4, 4]
        assert canonical_codes(lengths) == [2, 3, 4, 5, 6, 0, 14, 15]

    def test_oversubscribed_rejected(self):
        with pytest.raises(HuffmanError):
            canonical_codes([1, 1, 1])

    def test_codes_are_prefix_free(self):
        lengths = [2, 3, 3, 3, 4, 4, 4, 4]
        codes = canonical_codes(lengths)
        items = [(format(c, f"0{l}b")) for c, l in zip(codes, lengths) if l]
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if i != j:
                    assert not b.startswith(a)


class TestEncoderDecoder:
    def _roundtrip(self, lengths, symbols):
        enc = HuffmanEncoder(lengths)
        w = BitWriter()
        for sym in symbols:
            enc.encode(w, sym)
        dec = HuffmanDecoder(lengths)
        r = BitReader(w.getvalue())
        return [dec.decode(r) for _ in symbols]

    def test_simple_roundtrip(self):
        lengths = [2, 2, 2, 2]
        symbols = [0, 3, 1, 2, 2, 0]
        assert self._roundtrip(lengths, symbols) == symbols

    def test_roundtrip_with_long_codes(self):
        freqs = [2 ** i for i in range(12)]
        lengths = limited_code_lengths(freqs, 15)
        symbols = list(range(12)) * 3
        assert self._roundtrip(lengths, symbols) == symbols

    def test_codes_longer_than_fast_root(self):
        # Force codes > 9 bits so the slow path runs.
        freqs = [2 ** i for i in range(14)]
        lengths = limited_code_lengths(freqs, 15)
        assert max(lengths) > 9
        symbols = [0, 13, 0, 1, 13]
        assert self._roundtrip(lengths, symbols) == symbols

    def test_encode_symbol_without_code_raises(self):
        enc = HuffmanEncoder([1, 1, 0])
        w = BitWriter()
        with pytest.raises(HuffmanError):
            enc.encode(w, 2)

    def test_decoder_rejects_empty(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([0, 0])

    def test_decoder_rejects_oversubscribed(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([1, 1, 1])

    def test_decoder_rejects_incomplete_multicode(self):
        with pytest.raises(HuffmanError):
            HuffmanDecoder([2, 2, 2])  # 3 codes of 2 bits: one missing

    def test_single_code_incomplete_accepted(self):
        dec = HuffmanDecoder([0, 1, 0])
        r = BitReader(bytes([0b0]))
        assert dec.decode(r) == 1

    def test_cost_reports_lengths(self):
        enc = HuffmanEncoder([3, 0, 2])
        assert enc.cost(0) == 3
        assert enc.cost(1) == 0
        assert enc.cost(2) == 2

    @given(st.lists(st.integers(min_value=0, max_value=500),
                    min_size=2, max_size=48).filter(
                        lambda f: sum(1 for x in f if x) >= 2),
           st.data())
    def test_roundtrip_property(self, freqs, data):
        lengths = limited_code_lengths(freqs, 15)
        usable = [i for i, length in enumerate(lengths) if length]
        symbols = data.draw(st.lists(st.sampled_from(usable), max_size=64))
        assert self._roundtrip(lengths, symbols) == symbols
