"""Chaos under load: faults firing while the service handles clients.

The offline chaos campaign (test_resilience) proves the pool survives
faults in isolation; this suite proves the *serving stack* does — fault
injectors wired to every chip while concurrent client threads push
QoS-tagged traffic through one :class:`CompressionService`.  The bar:
zero wrong payloads among accepted requests, every shed request typed
retryable, queues bounded, and the breakers actually cycling (open on
the dead chip, closed again after recovery probes).
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.resilience.chaos import default_plans, run_service_scenario


class TestChaosUnderLoad:
    @pytest.mark.parametrize("seed", [7, 23])
    def test_combined_storm_no_wrong_bytes(self, seed):
        result = run_service_scenario(seed=seed, jobs=120, chips=2,
                                      max_size=4096, clients=4)
        assert result.survived, result.render()
        assert result.wrong_bytes == 0
        assert result.shed_nonretryable == 0
        assert result.served + result.shed_retryable \
            + result.failed == result.jobs
        assert result.faults_injected, "storm injected nothing"
        assert result.max_queue_depth <= result.queue_bound

    def test_chip_death_opens_and_recovers_breaker(self):
        result = run_service_scenario(seed=11, jobs=160, chips=2,
                                      max_size=4096, clients=4,
                                      scenario="chip_death")
        assert result.survived, result.render()
        assert result.faults_injected.get("chip_death", 0) >= 1
        # The dead chip's breaker must have opened — and after the
        # plan's recovery point, probe successes must close it again.
        assert result.breaker_opens >= 1, result.render()
        assert result.breaker_closes >= 1, result.render()
        # Everything accepted still produced correct bytes (rescue or
        # the surviving chip picked up the work).
        assert result.wrong_bytes == 0

    def test_hang_scenario_served_through_rescue(self):
        result = run_service_scenario(seed=3, jobs=100, chips=2,
                                      max_size=4096, clients=4,
                                      scenario="engine_hang")
        assert result.survived, result.render()
        assert result.wrong_bytes == 0
        if result.faults_injected.get("engine_hang"):
            # Hangs were injected: jobs still completed, some through
            # the software-rescue path.
            assert result.served > 0

    def test_corruption_never_reaches_clients(self):
        result = run_service_scenario(seed=5, jobs=100, chips=2,
                                      max_size=4096, clients=4,
                                      scenario="corrupt_output")
        assert result.survived, result.render()
        assert result.wrong_bytes == 0
        assert result.faults_injected.get("corrupt_output", 0) >= 1

    def test_unknown_scenario_is_typed_error(self):
        with pytest.raises(ReproError):
            run_service_scenario(scenario="not-a-scenario")

    def test_every_named_scenario_exists(self):
        # The under-load runner accepts exactly the campaign's plans.
        for name in default_plans(50):
            assert name in default_plans(50)
