"""Stateful streaming fuzz: randomized chunk-boundary schedules.

The streaming layers hold state between calls — a 32 KB history window
on the compress side, a partially decoded element plus buffered bits on
the inflate side — so their bugs live at chunk *boundaries*: a split
mid-Huffman-code, a zero-length write, a flush followed by more data.
These tests drive both with seeded random schedules (boundaries placed
anywhere, including empty chunks and 1-byte feeds) and hold the whole
family to one oracle: byte parity with the one-shot path.
"""

from __future__ import annotations

import gzip
import random
import zlib

import pytest

from repro import NxGzip
from repro.core.stream import StreamStateError, reassemble
from repro.deflate.inflate import inflate_with_stats
from repro.deflate.inflate_stream import InflateStream, inflate_incremental
from repro.errors import DeflateError
from repro.workloads.generators import generate

SEEDS = (3, 17, 101, 424243)


def random_schedule(rng: random.Random, total: int,
                    zero_chunks: bool = True) -> list[int]:
    """Chunk sizes summing to ``total``, with occasional empty chunks."""
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        if zero_chunks and rng.random() < 0.15:
            sizes.append(0)
            continue
        step = rng.choice((1, 7, rng.randint(1, 97),
                           rng.randint(1, 4096),
                           rng.randint(1, max(1, remaining))))
        step = min(step, remaining)
        sizes.append(step)
        remaining -= step
    if zero_chunks:
        sizes.append(0)
    return sizes


def split(data: bytes, sizes: list[int]) -> list[bytes]:
    chunks, offset = [], 0
    for size in sizes:
        chunks.append(data[offset:offset + size])
        offset += size
    assert offset == len(data)
    return chunks


@pytest.fixture(scope="module")
def corpus() -> dict[str, bytes]:
    return {
        "text": generate("markov_text", 60000, seed=31),
        "json": generate("json_records", 60000, seed=32),
        "binary": generate("binary_executable", 40000, seed=33),
        "random": generate("random_bytes", 16384, seed=34),
        "zeros": bytes(30000),
    }


class TestCompressStreamFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fmt", ["gzip", "zlib", "raw"])
    def test_random_boundaries_round_trip(self, corpus, seed, fmt):
        rng = random.Random(seed)
        name = rng.choice(sorted(corpus))
        data = corpus[name]
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt=fmt)
            out = b""
            for chunk in split(data, random_schedule(rng, len(data))):
                out += stream.write(chunk)
            out += stream.finish()
        if fmt == "gzip":
            assert gzip.decompress(out) == data
        elif fmt == "zlib":
            assert zlib.decompress(out) == data
        else:
            assert zlib.decompress(out, wbits=-15) == data

    @pytest.mark.parametrize("seed", SEEDS)
    def test_parity_with_one_shot(self, corpus, seed):
        """Chunked and one-shot agree on the *decompressed* bytes for
        every schedule (the wire bytes legitimately differ: block
        boundaries follow the chunking)."""
        rng = random.Random(seed * 7)
        data = corpus["json"]
        with NxGzip("POWER9") as session:
            one_shot = session.compress(data, fmt="gzip").data
            stream = session.compress_stream(fmt="gzip")
            chunked = b"".join(
                stream.write(c)
                for c in split(data, random_schedule(rng, len(data))))
            chunked += stream.finish()
        assert gzip.decompress(one_shot) == gzip.decompress(chunked)

    def test_all_zero_length_chunks(self):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="gzip")
            out = stream.write(b"") + stream.write(b"") + stream.finish()
        assert gzip.decompress(out) == b""

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_flush_points_decode_incrementally(self, seed):
        """Every non-final unit ends in a sync flush, so a reader can
        decode unit-by-unit without waiting for the stream to close."""
        rng = random.Random(seed + 99)
        data = generate("log_lines", 50000, seed=seed)
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="raw")
            units = [stream.write(c) for c in
                     split(data, random_schedule(rng, len(data),
                                                 zero_chunks=False))]
            units.append(stream.finish())
            reader = session.decompress_stream()
            restored = b"".join(
                reader.decode_unit(u, final=(i == len(units) - 1))
                for i, u in enumerate(units))
        assert restored == data
        # And the reassembled raw stream is a valid one-shot stream.
        assert zlib.decompress(reassemble(units), wbits=-15) == data

    def test_write_after_finish_raises(self):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="gzip")
            stream.finish(b"done")
            with pytest.raises(StreamStateError):
                stream.write(b"more")

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_interleaved_history_windows(self, seed):
        """Chunks larger than the 32 KB window still carry the right
        history into every continuation request."""
        rng = random.Random(seed)
        data = generate("markov_text", 150000, seed=seed)
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="gzip")
            out = b""
            offset = 0
            while offset < len(data):
                step = rng.choice((1000, 33000, 65536))
                out += stream.write(data[offset:offset + step])
                offset += step
            out += stream.finish()
        assert gzip.decompress(out) == data


class TestInflateStreamFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("level", [1, 6, 9])
    def test_random_feed_boundaries(self, corpus, seed, level):
        """Arbitrary splits — mid-header, mid-code, 1-byte feeds — all
        decode to exactly the one-shot plaintext."""
        rng = random.Random(seed * 13 + level)
        name = rng.choice(sorted(corpus))
        data = corpus[name]
        payload = zlib.compress(data, level)[2:-4]  # raw deflate
        chunks = split(payload, random_schedule(rng, len(payload)))
        assert inflate_incremental(chunks) == data

    @pytest.mark.parametrize("seed", SEEDS)
    def test_parity_with_one_shot_inflate(self, seed):
        rng = random.Random(seed)
        data = generate("json_records", 40000, seed=seed)
        payload = zlib.compress(data, 6)[2:-4]
        one_shot, _stats, _bits = inflate_with_stats(payload)
        chunks = split(payload, random_schedule(rng, len(payload)))
        stream = InflateStream()
        out = bytearray()
        for chunk in chunks:
            out += stream.feed(chunk)
        out += stream.finish()
        assert bytes(out) == one_shot == data

    def test_byte_at_a_time(self):
        data = generate("markov_text", 8000, seed=5)
        payload = zlib.compress(data, 9)[2:-4]
        stream = InflateStream()
        out = bytearray()
        for i in range(len(payload)):
            out += stream.feed(payload[i:i + 1])
        out += stream.finish()
        assert bytes(out) == data

    def test_finished_flag_and_trailing_data(self):
        data = b"finished-flag " * 500
        payload = zlib.compress(data, 6)[2:-4]
        stream = InflateStream()
        stream.feed(payload)
        stream.finish()
        assert stream.finished
        with pytest.raises(DeflateError):
            stream.feed(b"\x00extra")

    def test_truncated_stream_is_typed_error(self):
        data = generate("json_records", 20000, seed=9)
        payload = zlib.compress(data, 6)[2:-4]
        stream = InflateStream()
        stream.feed(payload[:len(payload) // 2])
        with pytest.raises(DeflateError):
            stream.finish()

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_stream_output_feeds_inflate_stream(self, seed):
        """End-to-end cross-layer fuzz: the NX streaming compressor's
        raw output, re-split on fresh random boundaries, through the
        incremental decoder."""
        rng = random.Random(seed + 1000)
        data = generate("log_lines", 60000, seed=seed)
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="raw")
            wire = b"".join(
                stream.write(c) for c in
                split(data, random_schedule(rng, len(data))))
            wire += stream.finish()
        chunks = split(wire, random_schedule(rng, len(wire)))
        assert inflate_incremental(chunks) == data
