"""Streaming (continuation) compression and dictionary support."""

import gzip as stdgzip
import zlib as stdzlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NxGzip
from repro.core.stream import StreamStateError
from repro.deflate.compress import deflate
from repro.deflate.containers import zlib_compress, zlib_decompress
from repro.deflate.inflate import inflate_with_stats
from repro.errors import AcceleratorError, ChecksumError, DeflateError
from repro.nx.compressor import NxCompressor
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9
from repro.workloads.generators import generate


@pytest.fixture(scope="module")
def stream_data():
    return generate("log_lines", 120000, seed=8)


def chunked(data, size):
    return [data[i:i + size] for i in range(0, len(data), size)]


class TestDictionaryCodec:
    def test_deflate_with_history_roundtrip(self, json_20k):
        hist = json_20k[:8000]
        data = json_20k[8000:]
        payload = deflate(data, level=6, history=hist).data
        out, _s, _b = inflate_with_stats(payload, history=hist)
        assert out == data

    def test_stdlib_zdict_decodes_ours(self, json_20k):
        hist = json_20k[:8000]
        data = json_20k[8000:]
        payload = deflate(data, level=6, history=hist).data
        obj = stdzlib.decompressobj(-15, zdict=hist)
        assert obj.decompress(payload) == data

    def test_we_decode_stdlib_zdict(self, json_20k):
        hist = json_20k[:8000]
        data = json_20k[8000:]
        comp = stdzlib.compressobj(6, stdzlib.DEFLATED, -15, zdict=hist)
        payload = comp.compress(data) + comp.flush()
        out, _s, _b = inflate_with_stats(payload, history=hist)
        assert out == data

    def test_dictionary_improves_ratio_on_shared_schema(self):
        hist = generate("json_records", 16384, seed=70)
        data = generate("json_records", 16384, seed=71)
        plain = len(deflate(data, level=6).data)
        primed = len(deflate(data, level=6, history=hist).data)
        assert primed < plain

    def test_zlib_container_fdict(self, json_20k):
        hist = json_20k[:4000]
        data = json_20k[4000:]
        payload = zlib_compress(data, 6, zdict=hist)
        assert payload[1] & 0x20  # FDICT set
        assert zlib_decompress(payload, zdict=hist) == data
        obj = stdzlib.decompressobj(zdict=hist)
        assert obj.decompress(payload) == data

    def test_fdict_wrong_dictionary_rejected(self, json_20k):
        payload = zlib_compress(json_20k, 6, zdict=b"right dictionary")
        with pytest.raises(ChecksumError):
            zlib_decompress(payload, zdict=b"wrong dictionary")

    def test_fdict_missing_dictionary_rejected(self, json_20k):
        payload = zlib_compress(json_20k, 6, zdict=b"needed")
        with pytest.raises(DeflateError):
            zlib_decompress(payload)

    def test_history_longer_than_window_truncated(self, text_20k):
        hist = bytes(40000) + text_20k
        payload = deflate(text_20k, level=6, history=hist).data
        obj = stdzlib.decompressobj(-15, zdict=hist[-32768:])
        assert obj.decompress(payload) == text_20k


class TestNxHistory:
    def test_compressor_history_roundtrip(self, stream_data):
        comp = NxCompressor(POWER9.engine)
        hist = stream_data[:32768]
        data = stream_data[32768:65536]
        result = comp.compress(data, strategy=DhtStrategy.DYNAMIC,
                               history=hist)
        obj = stdzlib.decompressobj(-15, zdict=hist)
        assert obj.decompress(result.data) == data

    def test_history_charges_cycles(self, stream_data):
        comp = NxCompressor(POWER9.engine)
        data = stream_data[32768:65536]
        plain = comp.compress(data, strategy=DhtStrategy.FIXED)
        primed = comp.compress(data, strategy=DhtStrategy.FIXED,
                               history=stream_data[:32768])
        assert primed.cycles.history_load > 0
        assert primed.cycles.total > plain.cycles.total

    def test_nonfinal_requires_raw(self):
        comp = NxCompressor(POWER9.engine)
        with pytest.raises(AcceleratorError):
            comp.compress(b"abc", fmt="gzip", final=False)

    def test_continuation_units_concatenate(self, stream_data):
        comp = NxCompressor(POWER9.engine)
        chunks = chunked(stream_data, 30000)
        parts = []
        hist = b""
        for idx, chunk in enumerate(chunks):
            result = comp.compress(chunk, strategy=DhtStrategy.DYNAMIC,
                                   history=hist,
                                   final=idx == len(chunks) - 1)
            parts.append(result.data)
            hist = (hist + chunk)[-32768:]
        assert stdzlib.decompress(b"".join(parts), -15) == stream_data


class TestCompressStream:
    @pytest.mark.parametrize("fmt", ["gzip", "zlib", "raw"])
    def test_stream_roundtrip(self, fmt, stream_data):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt=fmt)
            wire = b""
            for chunk in chunked(stream_data, 25000):
                wire += stream.write(chunk)
            wire += stream.finish()
        if fmt == "gzip":
            assert stdgzip.decompress(wire) == stream_data
        elif fmt == "zlib":
            assert stdzlib.decompress(wire) == stream_data
        else:
            assert stdzlib.decompress(wire, -15) == stream_data

    def test_stream_beats_independent_chunks(self, stream_data):
        """Window carry across chunks buys ratio vs. isolated requests."""
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="raw", strategy="dynamic")
            wire = b""
            for chunk in chunked(stream_data, 8192):
                wire += stream.write(chunk)
            wire += stream.finish()
        comp = NxCompressor(POWER9.engine)
        isolated = sum(
            len(comp.compress(c, strategy=DhtStrategy.DYNAMIC).data)
            for c in chunked(stream_data, 8192))
        assert len(wire) < isolated

    def test_write_after_finish_rejected(self, stream_data):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream()
            stream.finish(stream_data[:1000])
            with pytest.raises(StreamStateError):
                stream.write(b"more")

    def test_empty_stream(self):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="gzip")
            wire = stream.finish()
        assert stdgzip.decompress(wire) == b""

    def test_stats_accumulate(self, stream_data):
        with NxGzip("POWER9") as session:
            stream = session.compress_stream(fmt="raw")
            for chunk in chunked(stream_data[:60000], 20000):
                stream.write(chunk)
            stream.finish()
        assert stream.stats.chunks == 4  # 3 writes + final empty
        assert stream.stats.bytes_in == 60000
        assert stream.stats.modelled_seconds > 0

    def test_faults_during_streaming_recovered(self, stream_data):
        with NxGzip("POWER9", fault_probability=0.02, seed=5) as session:
            stream = session.compress_stream(fmt="gzip")
            wire = b""
            for chunk in chunked(stream_data[:80000], 20000):
                wire += stream.write(chunk)
            wire += stream.finish()
        assert stdgzip.decompress(wire) == stream_data[:80000]


class TestDecompressStream:
    def test_unit_by_unit_decode(self, stream_data):
        with NxGzip("POWER9") as session:
            cstream = session.compress_stream(fmt="raw")
            units = [cstream.write(chunk)
                     for chunk in chunked(stream_data, 30000)]
            units.append(cstream.finish())

            dstream = session.decompress_stream()
            out = b""
            for idx, unit in enumerate(units):
                out += dstream.decode_unit(unit,
                                           final=idx == len(units) - 1)
        assert out == stream_data


@settings(max_examples=20, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=3000), min_size=1,
                max_size=6))
def test_streaming_roundtrip_property(chunks):
    comp = NxCompressor(POWER9.engine)
    parts = []
    hist = b""
    for idx, chunk in enumerate(chunks):
        result = comp.compress(chunk, strategy=DhtStrategy.AUTO,
                               history=hist,
                               final=idx == len(chunks) - 1)
        parts.append(result.data)
        hist = (hist + chunk)[-32768:]
    assert stdzlib.decompress(b"".join(parts), -15) == b"".join(chunks)
