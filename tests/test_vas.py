"""VAS switchboard: windows, credits, paste flow control."""

import pytest

from repro.errors import VasError
from repro.sysstack.crb import Crb, FunctionCode, Op
from repro.sysstack.dde import Dde
from repro.sysstack.vas import Vas


def make_crb(seq: int = 0) -> Crb:
    return Crb(function=FunctionCode(op=Op.COMPRESS),
               source=Dde.direct(0x1000, 100),
               target=Dde.direct(0x2000, 200),
               csb_address=0x3000, sequence=seq)


class TestWindows:
    def test_open_assigns_ids(self):
        vas = Vas()
        w1 = vas.open_window()
        w2 = vas.open_window()
        assert w1.window_id != w2.window_id

    def test_close_removes(self):
        vas = Vas()
        w = vas.open_window()
        vas.close_window(w.window_id)
        with pytest.raises(VasError):
            vas.paste(w.window_id, make_crb())

    def test_close_with_outstanding_rejected(self):
        vas = Vas()
        w = vas.open_window()
        vas.paste(w.window_id, make_crb())
        with pytest.raises(VasError):
            vas.close_window(w.window_id)

    def test_unknown_window_rejected(self):
        with pytest.raises(VasError):
            Vas().paste(99, make_crb())


class TestCredits:
    def test_paste_consumes_credit(self):
        vas = Vas(default_credits=2)
        w = vas.open_window()
        assert vas.paste(w.window_id, make_crb(0))
        assert vas.paste(w.window_id, make_crb(1))
        assert not vas.paste(w.window_id, make_crb(2))  # out of credits
        assert w.pastes_rejected == 1

    def test_return_credit_allows_more(self):
        vas = Vas(default_credits=1)
        w = vas.open_window()
        assert vas.paste(w.window_id, make_crb())
        vas.pop_request()
        vas.return_credit(w.window_id)
        assert vas.paste(w.window_id, make_crb())

    def test_over_return_rejected(self):
        vas = Vas()
        w = vas.open_window()
        with pytest.raises(VasError):
            vas.return_credit(w.window_id)

    def test_custom_credit_allocation(self):
        vas = Vas()
        w = vas.open_window(credits=3)
        assert w.credits == 3


class TestFifo:
    def test_fifo_order(self):
        vas = Vas()
        w = vas.open_window()
        for seq in range(4):
            vas.paste(w.window_id, make_crb(seq))
        seqs = []
        while True:
            record = vas.pop_request()
            if record is None:
                break
            seqs.append(record.crb().sequence)
        assert seqs == [0, 1, 2, 3]

    def test_fifo_depth_backpressure(self):
        vas = Vas(rx_fifo_depth=2, default_credits=10)
        w = vas.open_window()
        assert vas.paste(w.window_id, make_crb(0))
        assert vas.paste(w.window_id, make_crb(1))
        assert not vas.paste(w.window_id, make_crb(2))  # FIFO full

    def test_pop_empty_returns_none(self):
        assert Vas().pop_request() is None

    def test_paste_payload_is_raw_crb(self):
        vas = Vas()
        w = vas.open_window()
        crb = make_crb(9)
        vas.paste(w.window_id, crb)
        record = vas.pop_request()
        assert record.raw_crb == crb.pack()
        assert record.window_id == w.window_id

    def test_multiple_windows_share_fifo(self):
        vas = Vas()
        w1 = vas.open_window()
        w2 = vas.open_window()
        vas.paste(w1.window_id, make_crb(0))
        vas.paste(w2.window_id, make_crb(1))
        assert vas.pop_request().window_id == w1.window_id
        assert vas.pop_request().window_id == w2.window_id
