"""Decompressor: correct decoding and strict malformed-stream rejection."""

import zlib

import pytest

from repro.deflate.bitio import BitWriter
from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate, inflate_with_stats
from repro.errors import DeflateError


class TestInflate:
    def test_stored_block(self):
        w = BitWriter()
        w.write_bits(1, 1)  # final
        w.write_bits(0, 2)  # stored
        w.align_to_byte()
        w.write_bytes(bytes([5, 0, 0xFA, 0xFF]))
        w.write_bytes(b"hello")
        assert inflate(w.getvalue()) == b"hello"

    def test_stored_len_nlen_mismatch(self):
        w = BitWriter()
        w.write_bits(1, 1)
        w.write_bits(0, 2)
        w.align_to_byte()
        w.write_bytes(bytes([5, 0, 0x00, 0x00]))  # bad NLEN
        w.write_bytes(b"hello")
        with pytest.raises(DeflateError, match="LEN/NLEN"):
            inflate(w.getvalue())

    def test_reserved_btype_rejected(self):
        w = BitWriter()
        w.write_bits(1, 1)
        w.write_bits(3, 2)
        with pytest.raises(DeflateError, match="reserved"):
            inflate(w.getvalue())

    def test_truncated_stream(self):
        good = deflate(b"some compressible text " * 50, level=6).data
        with pytest.raises(DeflateError):
            inflate(good[: len(good) // 2])

    def test_distance_before_start_rejected(self):
        # zlib with a preset window can create such streams; craft one
        # via fixed-Huffman bytes: literal 'a', then match dist 2 len 3.
        from repro.deflate.compress import BlockPlan, emit_block
        from repro.deflate.constants import BTYPE_FIXED

        plan = BlockPlan(tokens=[ord("a"), (3, 2)], raw=b"",
                         btype=BTYPE_FIXED)
        w = BitWriter()
        emit_block(w, plan, final=True)
        with pytest.raises(DeflateError, match="back-reference"):
            inflate(w.getvalue())

    def test_output_cap_enforced(self):
        data = deflate(bytes(100000), level=6).data
        with pytest.raises(DeflateError, match="exceeds"):
            inflate_with_stats(data, max_output=1000)

    def test_stats_reflect_stream(self, text_20k):
        payload = deflate(text_20k, level=6).data
        out, stats, bits = inflate_with_stats(payload)
        assert out == text_20k
        assert stats.output_bytes == len(text_20k)
        assert stats.blocks  # at least one block
        assert bits <= len(payload) * 8

    def test_multiple_blocks_counted(self, text_20k):
        payload = deflate(text_20k, level=6, block_tokens=512).data
        _out, stats, _bits = inflate_with_stats(payload)
        assert len(stats.blocks) > 1

    def test_decodes_stdlib_best_compression(self, json_20k):
        payload = zlib.compress(json_20k, 9)[2:-4]
        assert inflate(payload) == json_20k

    def test_decodes_stdlib_huffman_only(self, json_20k):
        comp = zlib.compressobj(6, zlib.DEFLATED, -15, 9,
                                zlib.Z_HUFFMAN_ONLY)
        payload = comp.compress(json_20k) + comp.flush()
        assert inflate(payload) == json_20k

    def test_decodes_stdlib_fixed_blocks(self):
        # Small inputs make zlib emit fixed-Huffman blocks.
        data = b"abc"
        payload = zlib.compress(data, 6)[2:-4]
        assert inflate(payload) == data

    def test_bits_consumed_allows_trailer_location(self, text_20k):
        payload = deflate(text_20k, level=6).data
        _out, _stats, bits = inflate_with_stats(payload + b"TRAILER")
        assert (bits + 7) // 8 == len(payload)


class TestDynamicHeaderValidation:
    def _header_stream(self, mutate):
        payload = bytearray(deflate(b"dynamic header test " * 200,
                                    level=6).data)
        mutate(payload)
        return bytes(payload)

    def test_corrupt_stream_raises_not_crashes(self, text_20k):
        payload = bytearray(deflate(text_20k, level=6).data)
        for pos in range(0, len(payload), 97):
            corrupted = bytearray(payload)
            corrupted[pos] ^= 0xFF
            try:
                inflate(bytes(corrupted))
            except DeflateError:
                pass  # rejection is the expected outcome
            # Silent wrong output is possible for some corruptions and
            # is caught by container checksums, tested elsewhere.
