"""Bidirectional interoperability with CPython's zlib across levels."""

import random
import zlib

import pytest

from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate


@pytest.mark.parametrize("level", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
def test_stdlib_decodes_every_level(level, payload_suite):
    for name, data in payload_suite.items():
        ours = deflate(data, level=level).data
        assert zlib.decompress(ours, -15) == data, (name, level)


@pytest.mark.parametrize("level", [1, 6, 9])
def test_we_decode_every_stdlib_level(level, payload_suite):
    for name, data in payload_suite.items():
        theirs = zlib.compress(data, level)[2:-4]
        assert inflate(theirs) == data, (name, level)


def test_stdlib_decodes_multiblock(text_20k):
    ours = deflate(text_20k, level=6, block_tokens=256).data
    assert zlib.decompress(ours, -15) == text_20k


def test_sizes_comparable_to_stdlib(text_20k, json_20k):
    """Our level-6 output is within 15% of stdlib's (both directions)."""
    for data in (text_20k, json_20k):
        ours = len(deflate(data, level=6).data)
        theirs = len(zlib.compress(data, 6)) - 6
        assert ours < theirs * 1.15
        assert theirs < ours * 1.15


# -- differential fuzzing ----------------------------------------------------
#
# Seeded random payloads spanning the structures the hot-path kernels
# special-case (long runs for the slice matcher and overlap copier, word
# soup for literal runs, zero pages, byte noise, stitched mixtures), fed
# through both directions: our compressor against zlib's decoder at every
# level and strategy, and zlib's compressor (including its Z_FILTERED /
# Z_RLE / Z_HUFFMAN_ONLY / Z_FIXED strategies) against our decoder.


def _fuzz_payload(rng: random.Random) -> bytes:
    kind = rng.randrange(5)
    size = rng.randrange(1, 5000)
    if kind == 0:  # byte noise, worst case for matching
        return rng.randbytes(size)
    if kind == 1:  # long runs of few symbols: slice compare + overlap copy
        alphabet = rng.randbytes(rng.randrange(1, 4))
        return b"".join(
            bytes([alphabet[rng.randrange(len(alphabet))]])
            * rng.randrange(1, 300) for _ in range(size // 64 + 1))[:size]
    if kind == 2:  # word soup: text-like literal runs with repeats
        words = [rng.randbytes(rng.randrange(2, 9)) for _ in range(12)]
        return b" ".join(rng.choice(words)
                         for _ in range(size // 5 + 1))[:size]
    if kind == 3:  # zero page with sparse dirt (the 842 / page-store shape)
        page = bytearray(size)
        for _ in range(rng.randrange(8)):
            page[rng.randrange(size)] = rng.randrange(1, 256)
        return bytes(page)
    # stitched self-copy: mid-range back-references
    seed_len = rng.randrange(1, max(2, size // 2))
    seed = rng.randbytes(seed_len)
    out = bytearray(seed)
    while len(out) < size:
        start = rng.randrange(len(out))
        out += out[start:start + rng.randrange(1, 600)] or b"\x00"
    return bytes(out[:size])


@pytest.mark.parametrize("seed", range(24))
def test_fuzz_ours_to_stdlib(seed):
    rng = random.Random(0xD00D + seed)
    data = _fuzz_payload(rng)
    level = rng.choice([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    strategy = rng.choice(["default", "rle", "huffman_only"])
    ours = deflate(data, level=level, strategy=strategy).data
    assert zlib.decompress(ours, -15) == data, (seed, level, strategy)


@pytest.mark.parametrize("seed", range(24))
def test_fuzz_stdlib_to_ours(seed):
    rng = random.Random(0xFEED + seed)
    data = _fuzz_payload(rng)
    level = rng.choice([1, 4, 6, 9])
    strategy = rng.choice([zlib.Z_DEFAULT_STRATEGY, zlib.Z_FILTERED,
                           zlib.Z_RLE, zlib.Z_HUFFMAN_ONLY, zlib.Z_FIXED])
    comp = zlib.compressobj(level, zlib.DEFLATED, -15, 9, strategy)
    theirs = comp.compress(data) + comp.flush()
    assert inflate(theirs) == data, (seed, level, strategy)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_roundtrip_with_history(seed):
    rng = random.Random(0xCAFE + seed)
    history = _fuzz_payload(rng)
    data = _fuzz_payload(rng)
    ours = deflate(data, level=6, history=history).data
    decoder = zlib.decompressobj(wbits=-15, zdict=history[-32768:])
    assert decoder.decompress(ours) == data, seed


def test_stdlib_decodes_nx_output(text_20k, json_20k, random_8k):
    from repro.nx.compressor import NxCompressor
    from repro.nx.dht import DhtStrategy
    from repro.nx.params import POWER9

    compressor = NxCompressor(POWER9.engine)
    for data in (text_20k, json_20k, random_8k):
        for strategy in DhtStrategy:
            payload = compressor.compress(data, strategy=strategy).data
            assert zlib.decompress(payload, -15) == data, strategy


# -- multi-member gzip differential fuzzing ----------------------------------
#
# Seeded archives concatenate gzip members from *both* compressors at
# mixed levels (level 0 forces stored blocks; tiny members force tiny
# final blocks), then the speculative parallel-inflate engine must agree
# byte-for-byte with the stdlib's multi-member decoder.


def _fuzz_member(rng: random.Random) -> tuple[bytes, bytes]:
    """One gzip member: (plain bytes, compressed member)."""
    import gzip as stdgzip

    from repro.deflate.containers import gzip_compress

    data = _fuzz_payload(rng)
    if rng.random() < 0.3:
        data = data[:rng.randrange(1, 40)]  # tiny member, tiny blocks
    if rng.random() < 0.5:
        return data, stdgzip.compress(data, rng.choice([1, 6, 9]))
    return data, gzip_compress(data, level=rng.choice([0, 2, 6, 9]))


@pytest.mark.parametrize("seed", range(16))
def test_fuzz_multimember_parallel_inflate(seed):
    import gzip as stdgzip

    from repro.deflate.parallel_inflate import parallel_inflate

    rng = random.Random(0xA11CE + seed)
    pairs = [_fuzz_member(rng) for _ in range(rng.randrange(1, 5))]
    plain = b"".join(p for p, _ in pairs)
    archive = b"".join(m for _, m in pairs)
    result = parallel_inflate(archive, "gzip", workers=1,
                              chunk_size=4096)
    assert result.data == plain == stdgzip.decompress(archive), seed
    assert result.members == len(pairs), seed


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_multimember_speculative_resolve(seed):
    """Same archives through the inline speculative path (every chunk
    decoded ahead and spliced), which must change nothing."""
    import gzip as stdgzip

    from tests.test_parallel_inflate import _speculative

    rng = random.Random(0xBEE5 + seed)
    pairs = [_fuzz_member(rng) for _ in range(rng.randrange(2, 6))]
    plain = b"".join(p for p, _ in pairs)
    archive = b"".join(m for _, m in pairs)
    out, _, _ = _speculative(archive, chunk_size=4096)
    assert out == plain == stdgzip.decompress(archive), seed


# -- priming-dictionary (zdict) differential ---------------------------------
#
# The dictionary service ships 32 KB LZ77 priming dictionaries; the
# engine applies them as preset history.  That path must be bit-exact
# with zlib's zdict semantics in both directions, including the window
# boundaries: an empty dict, a single byte, one byte short of the
# window, exactly the window, one past it (zlib keeps only the last
# 32768 bytes), and double the window.

_DICT_SIZES = [0, 1, 32767, 32768, 32769, 65536]
_WINDOW = 32768


def _dict_of(rng: random.Random, size: int) -> bytes:
    chunks = []
    total = 0
    while total < size:
        chunk = _fuzz_payload(rng)
        chunks.append(chunk)
        total += len(chunk)
    return b"".join(chunks)[:size]


def _data_referencing(rng: random.Random, zdict: bytes) -> bytes:
    """Payload stitched largely from dict content, so the dict matters."""
    tail = zdict[-_WINDOW:]
    parts = []
    for _ in range(6):
        if tail and rng.random() < 0.6:
            start = rng.randrange(len(tail))
            end = min(len(tail), start + rng.randrange(1, 500))
            parts.append(tail[start:end])
        else:
            parts.append(_fuzz_payload(rng)[:500])
    return b"".join(parts)


@pytest.mark.parametrize("level", [1, 6, 9])
@pytest.mark.parametrize("size", _DICT_SIZES)
def test_priming_dict_ours_to_stdlib(level, size):
    """Our history-primed streams decode under zlib's zdict."""
    rng = random.Random(0xD1C7 * (size + 1) + level)
    zdict = _dict_of(rng, size)
    data = _data_referencing(rng, zdict)

    ours = deflate(data, level=level, history=zdict).data
    if zdict:
        decoder = zlib.decompressobj(wbits=-15, zdict=zdict[-_WINDOW:])
    else:
        decoder = zlib.decompressobj(wbits=-15)
    assert decoder.decompress(ours) + decoder.flush() == data, \
        (size, level)


@pytest.mark.parametrize("level", [1, 6, 9])
@pytest.mark.parametrize("size", _DICT_SIZES)
def test_priming_dict_stdlib_to_ours(level, size):
    """zlib's zdict streams decode under our preset history."""
    from repro.deflate.inflate import inflate_with_stats

    rng = random.Random(0x2D1C7 * (size + 1) + level)
    zdict = _dict_of(rng, size)
    data = _data_referencing(rng, zdict)

    if zdict:
        comp = zlib.compressobj(level, zlib.DEFLATED, -15,
                                zdict=zdict[-_WINDOW:])
    else:
        comp = zlib.compressobj(level, zlib.DEFLATED, -15)
    theirs = comp.compress(data) + comp.flush()
    out, _stats, _bits = inflate_with_stats(theirs, history=zdict)
    assert out == data, (size, level)


@pytest.mark.parametrize("seed", range(4))
def test_trained_priming_dict_interop(seed):
    """Registry-trained priming dictionaries work as zlib zdicts."""
    from repro.dictsvc import DictionaryRegistry
    from repro.workloads.generators import generate

    traffic = generate("json_records", 65536, seed=seed)
    registry = DictionaryRegistry(seed=seed)
    for offset in range(0, len(traffic), 4096):
        registry.observe("tenant", traffic[offset:offset + 4096])
    trained = registry.train("tenant")
    assert trained

    data = generate("json_records", 8192, seed=seed + 100)
    for dictionary in trained:
        zdict = dictionary.priming
        assert 0 < len(zdict) <= _WINDOW
        ours = deflate(data, level=6, history=zdict).data
        decoder = zlib.decompressobj(wbits=-15, zdict=zdict)
        assert decoder.decompress(ours) + decoder.flush() == data

        comp = zlib.compressobj(6, zlib.DEFLATED, -15, zdict=zdict)
        theirs = comp.compress(data) + comp.flush()
        from repro.deflate.inflate import inflate_with_stats
        out, _stats, _bits = inflate_with_stats(theirs, history=zdict)
        assert out == data

        # A primed stream is smaller than an unprimed one for traffic
        # resembling the training distribution.
        unprimed = deflate(traffic[:4096], level=6).data
        primed = deflate(traffic[:4096], level=6, history=zdict).data
        assert len(primed) <= len(unprimed)
