"""Bidirectional interoperability with CPython's zlib across levels."""

import zlib

import pytest

from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate


@pytest.mark.parametrize("level", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
def test_stdlib_decodes_every_level(level, payload_suite):
    for name, data in payload_suite.items():
        ours = deflate(data, level=level).data
        assert zlib.decompress(ours, -15) == data, (name, level)


@pytest.mark.parametrize("level", [1, 6, 9])
def test_we_decode_every_stdlib_level(level, payload_suite):
    for name, data in payload_suite.items():
        theirs = zlib.compress(data, level)[2:-4]
        assert inflate(theirs) == data, (name, level)


def test_stdlib_decodes_multiblock(text_20k):
    ours = deflate(text_20k, level=6, block_tokens=256).data
    assert zlib.decompress(ours, -15) == text_20k


def test_sizes_comparable_to_stdlib(text_20k, json_20k):
    """Our level-6 output is within 15% of stdlib's (both directions)."""
    for data in (text_20k, json_20k):
        ours = len(deflate(data, level=6).data)
        theirs = len(zlib.compress(data, 6)) - 6
        assert ours < theirs * 1.15
        assert theirs < ours * 1.15


def test_stdlib_decodes_nx_output(text_20k, json_20k, random_8k):
    from repro.nx.compressor import NxCompressor
    from repro.nx.dht import DhtStrategy
    from repro.nx.params import POWER9

    compressor = NxCompressor(POWER9.engine)
    for data in (text_20k, json_20k, random_8k):
        for strategy in DhtStrategy:
            payload = compressor.compress(data, strategy=strategy).data
            assert zlib.decompress(payload, -15) == data, strategy
