"""RFC 1951 table invariants."""

from repro.deflate.constants import (
    DIST_BASE,
    DIST_EXTRA_BITS,
    DIST_TO_CODE,
    LENGTH_BASE,
    LENGTH_EXTRA_BITS,
    LENGTH_TO_CODE,
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    fixed_dist_lengths,
    fixed_litlen_lengths,
)


class TestLengthTables:
    def test_every_length_has_a_code(self):
        for length in range(MIN_MATCH, MAX_MATCH + 1):
            code = LENGTH_TO_CODE[length]
            assert 257 <= code <= 285

    def test_base_covers_code(self):
        for length in range(MIN_MATCH, MAX_MATCH + 1):
            idx = LENGTH_TO_CODE[length] - 257
            base = LENGTH_BASE[idx]
            extra = LENGTH_EXTRA_BITS[idx]
            assert base <= length
            if idx != 28:  # code 285 is exactly 258
                assert length < base + (1 << extra)

    def test_boundaries(self):
        assert LENGTH_TO_CODE[3] == 257
        assert LENGTH_TO_CODE[10] == 264
        assert LENGTH_TO_CODE[11] == 265
        assert LENGTH_TO_CODE[258] == 285

    def test_ranges_are_contiguous(self):
        covered = set()
        for code in range(28):
            base = LENGTH_BASE[code]
            extra = LENGTH_EXTRA_BITS[code]
            covered.update(range(base, base + (1 << extra)))
        covered.add(258)
        assert covered >= set(range(3, 259))


class TestDistTables:
    def test_every_distance_has_a_code(self):
        for dist in (1, 2, 4, 5, 100, 1024, 24576, 32768):
            assert 0 <= DIST_TO_CODE[dist] <= 29

    def test_base_covers_code(self):
        for dist in range(1, WINDOW_SIZE + 1):
            code = DIST_TO_CODE[dist]
            base = DIST_BASE[code]
            extra = DIST_EXTRA_BITS[code]
            assert base <= dist < base + (1 << extra)

    def test_boundaries(self):
        assert DIST_TO_CODE[1] == 0
        assert DIST_TO_CODE[4] == 3
        assert DIST_TO_CODE[5] == 4
        assert DIST_TO_CODE[32768] == 29


class TestFixedCodes:
    def test_fixed_litlen_structure(self):
        lengths = fixed_litlen_lengths()
        assert len(lengths) == 288
        assert lengths[0] == 8
        assert lengths[143] == 8
        assert lengths[144] == 9
        assert lengths[255] == 9
        assert lengths[256] == 7
        assert lengths[279] == 7
        assert lengths[280] == 8
        assert lengths[287] == 8

    def test_fixed_dist_is_complete_over_32(self):
        lengths = fixed_dist_lengths()
        assert lengths == [5] * 32

    def test_fixed_codes_are_complete(self):
        from repro.deflate.huffman import kraft_sum

        assert kraft_sum(fixed_litlen_lengths()) == 1.0
        assert kraft_sum(fixed_dist_lengths()) == 1.0
