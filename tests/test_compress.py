"""Block builder: planning, header RLE, block choice, emission."""

import pytest

from repro.deflate.bitio import BitWriter
from repro.deflate.compress import (
    BlockPlan,
    deflate,
    emit_block,
    encode_code_lengths,
    plan_block,
    token_frequencies,
)
from repro.deflate.constants import (
    BTYPE_DYNAMIC,
    BTYPE_FIXED,
    BTYPE_STORED,
    END_OF_BLOCK,
)
from repro.deflate.inflate import inflate
from repro.deflate.matcher import tokenize


class TestTokenFrequencies:
    def test_counts_literals_and_eob(self):
        lit, dist = token_frequencies([65, 65, 66])
        assert lit[65] == 2
        assert lit[66] == 1
        assert lit[END_OF_BLOCK] == 1
        assert sum(dist) == 0

    def test_counts_matches(self):
        lit, dist = token_frequencies([(3, 1), (258, 32768)])
        assert lit[257] == 1   # length 3
        assert lit[285] == 1   # length 258
        assert dist[0] == 1    # distance 1
        assert dist[29] == 1   # distance 32768


class TestEncodeCodeLengths:
    def _decode_ops(self, ops):
        out = []
        for op in ops:
            if isinstance(op, tuple):
                sym, extra = op
                if sym == 16:
                    out.extend([out[-1]] * (3 + extra))
                elif sym == 17:
                    out.extend([0] * (3 + extra))
                else:
                    out.extend([0] * (11 + extra))
            else:
                out.append(op)
        return out

    def test_roundtrip_simple(self):
        lit = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
        dist = [5] * 30
        ops, hlit, hdist = encode_code_lengths(lit, dist)
        assert hlit == 288
        assert hdist == 30
        assert self._decode_ops(ops) == lit[:hlit] + dist[:hdist]

    def test_trailing_zeros_trimmed(self):
        lit = [0] * 288
        lit[0] = 1
        lit[256] = 1
        dist = [0] * 30
        ops, hlit, hdist = encode_code_lengths(lit, dist)
        assert hlit == 257
        assert hdist == 1
        assert self._decode_ops(ops) == lit[:hlit] + dist[:hdist]

    def test_long_zero_runs_use_18(self):
        lit = [0] * 288
        lit[0] = 5
        lit[256] = 5
        dist = [1, 1] + [0] * 28
        ops, _hlit, _hdist = encode_code_lengths(lit, dist)
        assert any(isinstance(op, tuple) and op[0] == 18 for op in ops)

    def test_nonzero_repeats_use_16(self):
        lit = [7] * 288
        lit[286] = 0
        lit[287] = 0
        dist = [5] * 30
        ops, hlit, hdist = encode_code_lengths(lit, dist)
        assert any(isinstance(op, tuple) and op[0] == 16 for op in ops)
        assert self._decode_ops(ops) == lit[:hlit] + dist[:hdist]

    def test_various_run_lengths_roundtrip(self):
        for zrun in (1, 2, 3, 10, 11, 138, 139, 200):
            lit = [1, 1] + [0] * zrun + [2] * 4
            lit += [0] * (288 - len(lit))
            lit[256] = 1
            dist = [1] * 4 + [0] * 26
            ops, hlit, hdist = encode_code_lengths(lit, dist)
            assert self._decode_ops(ops) == lit[:hlit] + dist[:hdist]


class TestPlanBlock:
    def test_incompressible_chooses_stored(self, random_8k):
        tokens, _ = tokenize(random_8k, 6)
        plan = plan_block(tokens, random_8k)
        assert plan.btype == BTYPE_STORED

    def test_text_chooses_dynamic(self, text_20k):
        tokens, _ = tokenize(text_20k, 6)
        plan = plan_block(tokens, text_20k)
        assert plan.btype == BTYPE_DYNAMIC

    def test_tiny_input_prefers_fixed(self):
        data = b"abc"
        tokens, _ = tokenize(data, 6)
        plan = plan_block(tokens, data)
        assert plan.btype in (BTYPE_FIXED, BTYPE_STORED)

    def test_cost_is_positive(self, text_20k):
        tokens, _ = tokenize(text_20k, 6)
        assert plan_block(tokens, text_20k).cost_bits > 0


class TestEmitBlock:
    def _roundtrip_plan(self, plan):
        writer = BitWriter()
        emit_block(writer, plan, final=True)
        return inflate(writer.getvalue())

    def test_emit_stored(self):
        plan = BlockPlan(tokens=[], raw=b"hello world", btype=BTYPE_STORED)
        assert self._roundtrip_plan(plan) == b"hello world"

    def test_emit_stored_over_64k(self):
        raw = bytes(range(256)) * 300  # 76800 bytes: two stored blocks
        plan = BlockPlan(tokens=[], raw=raw, btype=BTYPE_STORED)
        assert self._roundtrip_plan(plan) == raw

    def test_emit_fixed(self, text_20k):
        tokens, _ = tokenize(text_20k, 6)
        plan = BlockPlan(tokens=tokens, raw=text_20k, btype=BTYPE_FIXED)
        assert self._roundtrip_plan(plan) == text_20k


class TestDeflate:
    @pytest.mark.parametrize("level", [0, 1, 4, 6, 9])
    def test_roundtrip(self, level, payload_suite):
        for name, data in payload_suite.items():
            result = deflate(data, level=level)
            assert inflate(result.data) == data, (name, level)

    def test_level0_is_stored(self, text_20k):
        result = deflate(text_20k, level=0)
        assert result.blocks == [BTYPE_STORED]
        assert len(result.data) > len(text_20k)

    def test_multiblock_stream(self, text_20k):
        result = deflate(text_20k, level=6, block_tokens=512)
        assert len(result.blocks) > 1
        assert inflate(result.data) == text_20k

    def test_ratio_reported(self, text_20k):
        result = deflate(text_20k, level=6)
        assert result.ratio == pytest.approx(
            len(text_20k) / len(result.data))

    def test_higher_levels_compress_at_least_as_well(self, text_20k):
        sizes = {level: len(deflate(text_20k, level=level).data)
                 for level in (1, 6, 9)}
        assert sizes[6] <= sizes[1] * 1.02
        assert sizes[9] <= sizes[6] * 1.02

    def test_empty_input(self):
        result = deflate(b"", level=6)
        assert inflate(result.data) == b""
