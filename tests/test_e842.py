"""842 codec and engine model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.e842.codec import (
    CHUNK,
    OP_BITS,
    TEMPLATES,
    E842Error,
    compress,
    decompress,
    template_cost_bits,
)
from repro.e842.engine import Engine842, Engine842Params
from repro.workloads.generators import generate


class TestTemplates:
    def test_every_template_covers_eight_bytes(self):
        widths = {"D8": 8, "D4": 4, "D2": 2, "I8": 8, "I4": 4, "I2": 2}
        for opcode, actions in TEMPLATES.items():
            assert sum(widths[a] for a in actions) == CHUNK, hex(opcode)

    def test_literal_template_is_most_expensive(self):
        d8 = template_cost_bits(TEMPLATES[0x00])
        for opcode, actions in TEMPLATES.items():
            if opcode != 0x00:
                assert template_cost_bits(actions) < d8

    def test_i8_is_cheapest(self):
        i8 = template_cost_bits(TEMPLATES[0x19])
        assert i8 == OP_BITS + 8
        assert all(template_cost_bits(a) >= i8 for a in TEMPLATES.values())


class TestRoundtrip:
    @pytest.mark.parametrize("generator", [
        "markov_text", "json_records", "database_pages", "random_bytes",
        "zero_bytes", "binary_executable", "log_lines", "dna_sequence",
    ])
    def test_generators(self, generator):
        data = generate(generator, 20000, seed=21)
        assert decompress(compress(data).data) == data

    @pytest.mark.parametrize("data", [
        b"", b"x", b"1234567", b"12345678", b"123456789",
        b"\x00" * 8, b"\x00" * 800, b"ab" * 100, bytes(range(256)),
    ])
    def test_edges(self, data):
        assert decompress(compress(data).data) == data

    def test_repeat_run_compresses_hard(self):
        data = b"ABCDEFGH" * 1000
        result = compress(data)
        assert result.ratio > 50
        assert result.stats.repeat_chunks > 900

    def test_zero_chunks_counted(self):
        result = compress(bytes(80))
        assert result.stats.zero_chunks >= 1

    def test_short_tail_counted(self):
        result = compress(b"12345678" + b"abc")
        assert result.stats.short_bytes == 3

    def test_random_expansion_bounded(self):
        data = generate("random_bytes", 16384, seed=5)
        result = compress(data)
        # 5-bit opcode per 64 data bits -> <9% worst-case expansion.
        assert len(result.data) < len(data) * 1.09


class TestErrors:
    def test_truncated_stream(self):
        payload = compress(b"hello world padding!").data
        with pytest.raises(Exception):
            decompress(payload[:2])

    def test_repeat_without_previous(self):
        from repro.deflate.bitio import BitWriter
        from repro.e842.codec import OP_REPEAT

        w = BitWriter()
        w.write_bits(OP_REPEAT, OP_BITS)
        w.write_bits(0, 6)
        with pytest.raises(E842Error):
            decompress(w.getvalue())

    def test_reserved_opcode(self):
        from repro.deflate.bitio import BitWriter

        w = BitWriter()
        w.write_bits(0x1F, OP_BITS)
        with pytest.raises(E842Error):
            decompress(w.getvalue())

    def test_output_cap(self):
        payload = compress(bytes(100000)).data
        with pytest.raises(E842Error):
            decompress(payload, max_output=1000)


class TestVsGzip:
    """The trade the paper's gzip engines win: ratio for simplicity."""

    def test_gzip_ratio_beats_842(self):
        from repro.deflate.compress import deflate

        for generator in ("markov_text", "json_records", "log_lines"):
            data = generate(generator, 30000, seed=31)
            gzip_ratio = deflate(data, level=6).ratio
            e842_ratio = compress(data).ratio
            assert gzip_ratio > e842_ratio, generator

    def test_842_engine_faster_than_gzip_engine(self):
        from repro.nx.compressor import NxCompressor
        from repro.nx.dht import DhtStrategy
        from repro.nx.params import POWER9

        data = generate("database_pages", 65536, seed=32)
        e842 = Engine842().compress(data)
        gzip = NxCompressor(POWER9.engine).compress(
            data, strategy=DhtStrategy.DYNAMIC)
        assert e842.throughput_gbps > gzip.throughput_gbps


class TestEngine:
    def test_cycles_track_width(self):
        engine = Engine842(Engine842Params(bytes_per_cycle=8))
        result = engine.compress(bytes(8000))
        assert result.cycles == engine.params.pipeline_fill_cycles + 1000

    def test_decompress_roundtrip(self):
        engine = Engine842()
        data = generate("json_records", 30000, seed=33)
        comp = engine.compress(data)
        out = engine.decompress(comp.data)
        assert out.data == data
        assert out.throughput_gbps > 0


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert decompress(compress(data).data) == data


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                max_size=8),
       st.integers(min_value=1, max_value=40))
def test_repetitive_roundtrip_property(pieces, reps):
    data = b"".join(pieces) * reps
    result = compress(data)
    assert decompress(result.data) == data


class TestE842ThroughAccelerator:
    """The 842 engines are reachable through the same CRB/VAS path."""

    def _driver(self):
        from repro.nx.accelerator import NxAccelerator
        from repro.nx.params import POWER9
        from repro.sysstack.driver import NxDriver
        from repro.sysstack.mmu import AddressSpace

        space = AddressSpace()
        driver = NxDriver(NxAccelerator(POWER9), space)
        driver.open()
        return driver

    def test_crb_roundtrip(self):
        from repro.sysstack.crb import Op

        driver = self._driver()
        data = generate("database_pages", 50000, seed=8)
        comp = driver.run(Op.COMPRESS_842, data)
        back = driver.run(Op.DECOMPRESS_842, comp.output)
        assert back.output == data

    def test_routed_to_dedicated_engine(self):
        from repro.sysstack.crb import Op

        driver = self._driver()
        data = generate("markov_text", 20000, seed=9)
        driver.run(Op.COMPRESS_842, data)
        driver.run(Op.COMPRESS, data)
        accel = driver.accelerator
        assert accel.e842_engine.counters.jobs == 1
        assert accel.compress_engine.counters.jobs == 1

    def test_decompress_842_overflow_grows(self):
        from repro.sysstack.crb import Op

        driver = self._driver()
        data = bytes(200000)  # compresses ~400x: 4x target is too small
        comp = driver.run(Op.COMPRESS_842, data)
        back = driver.run(Op.DECOMPRESS_842, comp.output)
        assert back.output == data
        assert back.stats.target_overflows >= 1

    def test_corrupt_842_rejected_with_data_length(self):
        from repro.errors import JobError
        from repro.sysstack.crb import Op

        driver = self._driver()
        with pytest.raises(JobError):
            driver.run(Op.DECOMPRESS_842, b"\xff" * 64)
