"""Address space: allocation, residency, translation, fault injection."""

import pytest

from repro.errors import TranslationFault
from repro.sysstack.mmu import PAGE_SIZE, AddressSpace, FaultInjector


class TestAllocation:
    def test_alloc_returns_distinct_regions(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert a != b
        assert abs(a - b) >= PAGE_SIZE

    def test_null_page_unmapped(self):
        space = AddressSpace()
        with pytest.raises(TranslationFault):
            space.read(0, 1)

    def test_write_read_roundtrip(self):
        space = AddressSpace()
        va = space.alloc(1000)
        space.write(va, b"hello world")
        assert space.read(va, 11) == b"hello world"

    def test_cross_page_write_read(self):
        space = AddressSpace(page_size=4096)
        va = space.alloc(3 * 4096)
        data = bytes(range(256)) * 40  # 10240 bytes across 3 pages
        space.write(va + 100, data)
        assert space.read(va + 100, len(data)) == data

    def test_unmapped_access_faults(self):
        space = AddressSpace()
        va = space.alloc(100)
        with pytest.raises(TranslationFault):
            space.read(va + 100 * PAGE_SIZE, 1)


class TestResidency:
    def test_page_out_then_translate_faults(self):
        space = AddressSpace()
        va = space.alloc(100)
        space.page_out(va)
        with pytest.raises(TranslationFault) as exc:
            space.translate(va, is_write=False)
        assert exc.value.address == va

    def test_touch_restores_residency(self):
        space = AddressSpace()
        va = space.alloc(100)
        space.page_out(va)
        space.touch(va)
        space.translate(va, is_write=False)  # does not raise

    def test_contents_survive_page_out(self):
        space = AddressSpace()
        va = space.alloc(100)
        space.write(va, b"persist")
        space.page_out(va)
        space.touch(va)
        assert space.read(va, 7) == b"persist"

    def test_resident_fraction(self):
        space = AddressSpace(page_size=4096)
        va = space.alloc(4 * 4096)
        assert space.resident_fraction() == 1.0
        space.page_out(va)
        assert space.resident_fraction() == pytest.approx(0.75)


class TestTranslation:
    def test_counts(self):
        space = AddressSpace(page_size=4096)
        va = space.alloc(3 * 4096)
        space.translate_range(va, 3 * 4096, is_write=False)
        assert space.translations == 3
        assert space.faults == 0

    def test_readonly_page_write_faults(self):
        space = AddressSpace()
        va = space.alloc(100)
        space.pages[va // PAGE_SIZE].writable = False
        space.translate(va, is_write=False)
        with pytest.raises(TranslationFault):
            space.translate(va, is_write=True)

    def test_zero_length_range_never_faults(self):
        space = AddressSpace()
        space.translate_range(12345678, 0, is_write=True)

    def test_dma_read_matches_cpu_read(self):
        space = AddressSpace()
        va = space.alloc(500)
        space.write(va, b"dma payload")
        assert space.dma_read(va, 11) == b"dma payload"

    def test_dma_write_then_cpu_read(self):
        space = AddressSpace()
        va = space.alloc(500)
        space.dma_write(va, b"engine out")
        assert space.read(va, 10) == b"engine out"

    def test_dma_to_paged_out_faults(self):
        space = AddressSpace()
        va = space.alloc(100)
        space.page_out(va)
        with pytest.raises(TranslationFault):
            space.dma_read(va, 10)


class TestFaultInjection:
    def test_zero_probability_never_fires(self):
        inj = FaultInjector(fault_probability=0.0)
        assert not any(inj.should_fault() for _ in range(1000))

    def test_unit_probability_always_fires(self):
        inj = FaultInjector(fault_probability=1.0)
        assert all(inj.should_fault() for _ in range(100))

    def test_deterministic_given_seed(self):
        a = FaultInjector(fault_probability=0.3, seed=7)
        b = FaultInjector(fault_probability=0.3, seed=7)
        assert ([a.should_fault() for _ in range(100)]
                == [b.should_fault() for _ in range(100)])

    def test_injected_fault_pages_out(self):
        space = AddressSpace(
            fault_injector=FaultInjector(fault_probability=1.0))
        va = space.alloc(100)
        with pytest.raises(TranslationFault):
            space.translate(va, is_write=False)
        assert not space.pages[va // PAGE_SIZE].present
