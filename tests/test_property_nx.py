"""Property-based tests across the accelerator surface + decoder fuzz."""

import zlib as stdzlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deflate.inflate import inflate
from repro.e842.codec import decompress as e842_decompress
from repro.errors import ReproError
from repro.nx.compressor import NxCompressor
from repro.nx.decompressor import NxDecompressor
from repro.nx.dht import DhtStrategy
from repro.nx.params import POWER9, Z15

_structured = st.builds(
    lambda chunks, reps: b"".join(chunk * reps for chunk in chunks),
    st.lists(st.binary(min_size=1, max_size=50), max_size=10),
    st.integers(min_value=1, max_value=25),
)
_payload = st.one_of(st.binary(max_size=3000), _structured)


@settings(max_examples=40, deadline=None)
@given(_payload, st.sampled_from(list(DhtStrategy)))
def test_nx_output_always_stdlib_decodable(data, strategy):
    result = NxCompressor(POWER9.engine).compress(data, strategy=strategy)
    assert stdzlib.decompress(result.data, -15) == data


@settings(max_examples=25, deadline=None)
@given(_payload)
def test_p9_and_z15_both_roundtrip(data):
    for machine in (POWER9, Z15):
        comp = NxCompressor(machine.engine).compress(
            data, strategy=DhtStrategy.AUTO)
        out = NxDecompressor(machine.engine).decompress(comp.data)
        assert out.data == data


@settings(max_examples=25, deadline=None)
@given(_payload)
def test_nx_never_worse_than_stored_plus_slack(data):
    result = NxCompressor(POWER9.engine).compress(
        data, strategy=DhtStrategy.AUTO)
    assert len(result.data) <= len(data) + 64 + 5 * (len(data) // 65535 + 1)


@settings(max_examples=25, deadline=None)
@given(_payload)
def test_cycles_monotone_in_input(data):
    comp = NxCompressor(POWER9.engine)
    small = comp.compress(data, strategy=DhtStrategy.FIXED)
    large = comp.compress(data + data, strategy=DhtStrategy.FIXED)
    assert large.cycles.scan >= small.cycles.scan


@settings(max_examples=30, deadline=None)
@given(_payload, st.sampled_from(["raw", "zlib", "gzip"]))
def test_session_formats_property(data, fmt):
    from repro import NxGzip, software_decompress

    with NxGzip("POWER9") as session:
        comp = session.compress(data, fmt=fmt)
        assert software_decompress(comp.data, fmt=fmt) == data


class TestDecoderFuzz:
    """Malformed input must raise a library error, never crash or hang."""

    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=1, max_size=400))
    def test_inflate_never_crashes(self, junk):
        try:
            inflate(junk)
        except ReproError:
            pass  # rejection is fine; silent garbage is checked elsewhere

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=400))
    def test_e842_never_crashes(self, junk):
        try:
            e842_decompress(junk, max_output=1 << 20)
        except ReproError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=2000), st.integers(min_value=0,
                                                 max_value=1999),
           st.integers(min_value=1, max_value=255))
    def test_bitflip_detected_or_decoded(self, data, pos, flip):
        """A corrupted valid stream either raises or yields bytes; the
        gzip container layer (CRC) is what guarantees detection."""
        comp = NxCompressor(POWER9.engine)
        payload = bytearray(comp.compress(data,
                                          strategy=DhtStrategy.AUTO).data)
        if pos >= len(payload):
            return
        payload[pos] ^= flip
        try:
            inflate(bytes(payload))
        except ReproError:
            pass

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=1500), st.integers(min_value=0,
                                                 max_value=1499))
    def test_gzip_container_catches_payload_corruption(self, data, pos):
        from repro.deflate.containers import gzip_decompress
        from repro.errors import ChecksumError, DeflateError

        comp = NxCompressor(POWER9.engine)
        payload = bytearray(comp.compress(data, fmt="gzip").data)
        body_start, body_end = 10, len(payload) - 8
        if body_end <= body_start:
            return
        target = body_start + pos % (body_end - body_start)
        payload[target] ^= 0xFF
        try:
            out = gzip_decompress(bytes(payload))
            # If it decoded, it must have decoded to the original
            # (the flip landed in a bit the decoder never consumed,
            # e.g. final-byte padding); CRC would catch anything else.
            assert out == data
        except (DeflateError, ChecksumError):
            pass
