"""zlib/gzip container framing, checksums, and stdlib interoperability."""

import gzip as stdgzip
import struct
import zlib as stdzlib

import pytest

from repro.deflate.containers import (
    gzip_compress,
    gzip_decompress,
    wrap_gzip,
    wrap_zlib,
    zlib_compress,
    zlib_decompress,
)
from repro.errors import ChecksumError, DeflateError


class TestZlibContainer:
    def test_roundtrip(self, payload_suite):
        for data in payload_suite.values():
            assert zlib_decompress(zlib_compress(data)) == data

    def test_stdlib_decodes_ours(self, text_20k):
        assert stdzlib.decompress(zlib_compress(text_20k)) == text_20k

    def test_we_decode_stdlib(self, text_20k):
        for level in (1, 6, 9):
            assert zlib_decompress(
                stdzlib.compress(text_20k, level)) == text_20k

    def test_header_check_bits_valid(self, text_20k):
        payload = zlib_compress(text_20k)
        assert ((payload[0] << 8) | payload[1]) % 31 == 0

    def test_adler_mismatch_detected(self, text_20k):
        payload = bytearray(zlib_compress(text_20k))
        payload[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            zlib_decompress(bytes(payload))

    def test_bad_method_rejected(self):
        payload = bytearray(zlib_compress(b"x"))
        payload[0] = (payload[0] & 0xF0) | 0x07  # CM=7
        payload[1] = 0
        header = (payload[0] << 8) | payload[1]
        payload[1] += 31 - header % 31
        with pytest.raises(DeflateError, match="method"):
            zlib_decompress(bytes(payload))

    def test_truncated_rejected(self):
        with pytest.raises(DeflateError):
            zlib_decompress(b"\x78\x9c")

    def test_preset_dictionary_rejected(self):
        header = (0x78 << 8) | 0x20
        header += 31 - header % 31
        with pytest.raises(DeflateError, match="dictionary"):
            zlib_decompress(struct.pack(">H", header) + b"\x00" * 8)


class TestGzipContainer:
    def test_roundtrip(self, payload_suite):
        for data in payload_suite.values():
            assert gzip_decompress(gzip_compress(data)) == data

    def test_stdlib_decodes_ours(self, json_20k):
        assert stdgzip.decompress(gzip_compress(json_20k)) == json_20k

    def test_we_decode_stdlib(self, json_20k):
        assert gzip_decompress(stdgzip.compress(json_20k)) == json_20k

    def test_we_decode_stdlib_with_filename(self, text_20k):
        import io

        buf = io.BytesIO()
        with stdgzip.GzipFile(filename="member.txt", mode="wb",
                              fileobj=buf, mtime=123) as handle:
            handle.write(text_20k)
        assert gzip_decompress(buf.getvalue()) == text_20k

    def test_crc_mismatch_detected(self, text_20k):
        payload = bytearray(gzip_compress(text_20k))
        payload[-5] ^= 0xFF  # inside CRC32 field
        with pytest.raises(ChecksumError):
            gzip_decompress(bytes(payload))

    def test_isize_mismatch_detected(self, text_20k):
        payload = bytearray(gzip_compress(text_20k))
        payload[-1] ^= 0xFF  # inside ISIZE field
        with pytest.raises(ChecksumError):
            gzip_decompress(bytes(payload))

    def test_bad_magic_rejected(self):
        payload = bytearray(gzip_compress(b"x"))
        payload[0] = 0
        with pytest.raises(DeflateError, match="magic"):
            gzip_decompress(bytes(payload))

    def test_mtime_encoded(self):
        payload = gzip_compress(b"x", mtime=0x01020304)
        assert payload[4:8] == bytes([4, 3, 2, 1])


class TestWrappers:
    def test_wrap_zlib_stdlib_compatible(self, text_20k):
        body = stdzlib.compress(text_20k)[2:-4]
        assert stdzlib.decompress(wrap_zlib(body, text_20k)) == text_20k

    def test_wrap_gzip_stdlib_compatible(self, text_20k):
        body = stdzlib.compress(text_20k)[2:-4]
        assert stdgzip.decompress(wrap_gzip(body, text_20k)) == text_20k
