"""Integration: every headline claim from the abstract, in one place.

These are the reproduction's acceptance tests — each asserts the *shape*
(and, for the calibrated anchors, the value) of one published claim.
"""

import pytest

from repro.nx.params import POWER9, Z15, Topology, z15_max_config
from repro.perf.cost import SoftwareCostModel, accelerator_effective_gbps
from repro.perf.energy import EnergyModel
from repro.perf.system import SystemModel
from repro.perf.timing import OffloadTimingModel
from repro.workloads.spark import SparkJobModel


class TestAbstractClaims:
    def test_388x_single_core_speedup(self):
        """'provides a 388x speedup factor over the zlib compression
        software running on a general-purpose core'"""
        timing = OffloadTimingModel(POWER9)
        speedup = timing.speedup(8 << 20, level=6)
        assert speedup == pytest.approx(388, rel=0.08)

    def test_13x_whole_chip_speedup(self):
        """'provides a 13x speedup factor over the entire chip of cores'"""
        accel = accelerator_effective_gbps(POWER9)
        chip = SoftwareCostModel(POWER9).chip_compress_rate_gbps(6)
        assert accel / chip == pytest.approx(13, rel=0.08)

    def test_23pct_spark_tpcds_speedup(self):
        """'the accelerators provide an end-to-end 23% speedup to Apache
        Spark TPC-DS workload compared to the software baseline'"""
        result = SparkJobModel().run()
        assert result.speedup == pytest.approx(1.23, abs=0.04)

    def test_z15_doubles_power9(self):
        """'The z15 chip doubles the compression rate of POWER9'"""
        p9 = accelerator_effective_gbps(POWER9)
        z15 = accelerator_effective_gbps(Z15)
        assert z15 / p9 == pytest.approx(2.0, rel=0.1)

    def test_280_gbps_max_z15(self):
        """'on a maximally configured z15 system topology ... up to
        280 GB/s data compression rate'"""
        rates = SystemModel(z15_max_config()).rates()
        assert rates.accelerator_gbps == pytest.approx(280, rel=0.06)

    def test_half_percent_chip_area(self):
        """'a single accelerator uses less than 0.5% of the processor
        chip area'"""
        assert POWER9.area_fraction < 0.005

    def test_microsecond_scale_invocation(self):
        """On-chip integration keeps invocation overhead in microseconds,
        versus tens of microseconds for an I/O-attached adapter."""
        timing = OffloadTimingModel(POWER9)
        assert timing.fixed_overhead_seconds() < 5e-6

    def test_energy_efficiency_beyond_speedup(self):
        """'significantly advance the state of the art in ... power/energy
        efficiency': the energy gap exceeds 100x."""
        gain = EnergyModel(POWER9).energy_comparison().efficiency_gain
        assert gain > 100


class TestShapeClaims:
    def test_ratio_ordering_on_corpus(self):
        """zlib -9 >= zlib -6 >~ NX >> zlib -1-ish ordering on corpora."""
        from repro.deflate.compress import deflate
        from repro.nx.compressor import NxCompressor
        from repro.nx.dht import DhtStrategy
        from repro.workloads.corpus import build_corpus

        corpus = build_corpus("quick")
        compressor = NxCompressor(POWER9.engine)
        total_in = total_nx = total_z1 = total_z6 = total_z9 = 0
        for data in corpus.values():
            total_in += len(data)
            total_nx += len(compressor.compress(
                data, strategy=DhtStrategy.DYNAMIC).data)
            total_z1 += len(deflate(data, 1).data)
            total_z6 += len(deflate(data, 6).data)
            total_z9 += len(deflate(data, 9).data)
        assert total_z9 <= total_z6 * 1.01
        assert total_nx <= total_z6 * 1.10   # NX within 10% of zlib -6
        assert total_nx <= total_z1 * 1.05   # and competitive with -1

    def test_break_even_in_kilobyte_range(self):
        be = OffloadTimingModel(POWER9).break_even_bytes(6)
        assert 10 < be < 16384

    def test_aggregate_scaling_linear(self):
        one = SystemModel(Topology(machine=Z15)).rates().accelerator_gbps
        ten = SystemModel(Topology(machine=Z15, chips_per_drawer=2,
                                   drawers=5)).rates().accelerator_gbps
        assert ten == pytest.approx(10 * one)

    def test_decompress_rate_higher_than_compress(self):
        assert (accelerator_effective_gbps(POWER9, "decompress")
                > accelerator_effective_gbps(POWER9, "compress"))


class TestSelfTest:
    def test_power9_selftest_passes(self):
        from repro.nx.selftest import run_selftest

        report = run_selftest(POWER9)
        assert report.passed
        assert report.vectors_run >= 5
        assert report.strategies_run == 4

    def test_z15_selftest_passes(self):
        from repro.nx.selftest import run_selftest

        assert run_selftest(Z15).passed
