"""Shared fixtures: small deterministic payloads and machine handles."""

from __future__ import annotations

import pytest

from repro.nx.params import POWER9, Z15
from repro.workloads.generators import generate


@pytest.fixture(scope="session")
def text_20k() -> bytes:
    return generate("markov_text", 20000, seed=11)


@pytest.fixture(scope="session")
def json_20k() -> bytes:
    return generate("json_records", 20000, seed=12)


@pytest.fixture(scope="session")
def random_8k() -> bytes:
    return generate("random_bytes", 8192, seed=13)


@pytest.fixture(scope="session")
def binary_20k() -> bytes:
    return generate("binary_executable", 20000, seed=14)


@pytest.fixture(scope="session")
def payload_suite(text_20k, json_20k, random_8k, binary_20k) -> dict:
    return {
        "empty": b"",
        "one": b"x",
        "tiny": b"abcabcabcabc",
        "text": text_20k,
        "json": json_20k,
        "random": random_8k,
        "binary": binary_20k,
        "zeros": bytes(4096),
    }


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shm_segments():
    """The whole suite must leave /dev/shm the way it found it.

    Slab ownership is strictly parent-side; any segment still tracked
    after the default pool shuts down is a leak that would accumulate
    in a long-lived service.
    """
    yield
    from repro.exec import live_segments, shutdown_default_pool

    shutdown_default_pool()
    assert live_segments() == (), (
        f"leaked shared-memory segments: {live_segments()}")


@pytest.fixture(scope="session")
def p9():
    return POWER9


@pytest.fixture(scope="session")
def z15():
    return Z15
