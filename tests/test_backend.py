"""Backend layer: registry, protocol round-trips, wire parity, stats."""

from __future__ import annotations

import gzip as stdlib_gzip
import zlib as stdlib_zlib

import pytest

from repro.backend import (
    backend_capabilities,
    backend_names,
    create_backend,
    default_backend,
    register_backend,
    unregister_backend,
)
from repro.core.api import NxGzip
from repro.errors import ConfigError
from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9, Z15
from repro.sysstack.crb import Op
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace, FaultInjector

BUILTIN = ("software", "nx", "dfltcc", "842")


# -- registry ----------------------------------------------------------------

def test_all_builtin_names_resolvable():
    for name in BUILTIN:
        assert name in backend_names()
        with create_backend(name) as backend:
            assert backend.name == name
            caps = backend.capabilities()
            assert caps.name == name
            assert caps.formats
            assert caps.default_format == caps.formats[0]


def test_unknown_backend_reports_available():
    with pytest.raises(ConfigError, match="unknown backend"):
        create_backend("zstd")


def test_register_alias_entry_point_spec():
    register_backend("nx-alias", "repro.backend.nx_async:NxAsyncBackend")
    try:
        assert "nx-alias" in backend_names()
        with create_backend("nx-alias", machine=POWER9) as backend:
            out = backend.compress(b"alias " * 200).output
            assert stdlib_gzip.decompress(out) == b"alias " * 200
    finally:
        unregister_backend("nx-alias")
    assert "nx-alias" not in backend_names()


def test_register_duplicate_rejected_unless_replace():
    with pytest.raises(ConfigError, match="already registered"):
        register_backend("nx", "repro.backend.nx_async:NxAsyncBackend")
    # replace=True is allowed and unregister restores the builtin spec.
    register_backend("nx", "repro.backend.nx_async:NxAsyncBackend",
                     replace=True)
    unregister_backend("nx")
    with create_backend("nx") as backend:
        assert backend.name == "nx"


def test_default_backend_per_machine():
    assert default_backend(POWER9) == "nx"
    assert default_backend(Z15) == "dfltcc"
    assert default_backend("z15") == "dfltcc"


def test_backend_capabilities_helper():
    caps = backend_capabilities("dfltcc")
    assert caps.synchronous and caps.hardware
    caps = backend_capabilities("software", machine=POWER9)
    assert not caps.hardware
    assert caps.per_call_overhead_s == 0.0


# -- protocol round-trips ----------------------------------------------------

@pytest.mark.parametrize("name", BUILTIN)
def test_round_trip_every_format(name, payload_suite):
    with create_backend(name) as backend:
        for fmt in backend.capabilities().formats:
            for label, data in payload_suite.items():
                compressed = backend.compress(data, fmt=fmt)
                restored = backend.decompress(compressed.output, fmt=fmt)
                assert restored.output == data, (name, fmt, label)


@pytest.mark.parametrize("name", ["nx", "dfltcc"])
def test_hardware_bitstreams_decodable_by_stdlib(name, text_20k):
    with create_backend(name) as backend:
        gz = backend.compress(text_20k, fmt="gzip").output
        zz = backend.compress(text_20k, fmt="zlib").output
        raw = backend.compress(text_20k, fmt="raw").output
    assert stdlib_gzip.decompress(gz) == text_20k
    assert stdlib_zlib.decompress(zz) == text_20k
    assert stdlib_zlib.decompressobj(-15).decompress(raw) == text_20k


def test_backend_stats_accumulate(json_20k):
    with create_backend("software") as backend:
        backend.compress(json_20k)
        backend.compress(json_20k)
        stats = backend.stats()
    assert stats.requests == 2
    assert stats.bytes_in == 2 * len(json_20k)
    assert stats.bytes_out > 0
    assert stats.modelled_seconds > 0.0


# -- NxGzip parity with the pre-refactor driver path -------------------------

@pytest.mark.parametrize("machine", [POWER9, Z15], ids=["POWER9", "z15"])
def test_session_byte_identical_to_direct_driver(machine, payload_suite):
    """The refactored session must reproduce the old hand-built stack
    exactly: same bytes out, same modelled seconds."""
    space = AddressSpace(fault_injector=FaultInjector(0.0, seed=0))
    legacy = NxDriver(NxAccelerator(machine), space)
    legacy.open()
    session = NxGzip(machine)
    try:
        for label, data in payload_suite.items():
            want = legacy.run(Op.COMPRESS, data, strategy="auto",
                              fmt="gzip")
            got = session.compress(data)
            assert got.data == want.output, label
            assert got.modelled_seconds == want.stats.elapsed_seconds, label
    finally:
        legacy.close()
        session.close()


def test_session_explicit_backends_round_trip(text_20k):
    for name in ("software", "nx"):
        with NxGzip(POWER9, backend=name) as session:
            buf = session.compress(text_20k)
            assert session.decompress(buf.data).data == text_20k
    with NxGzip(Z15, backend="dfltcc") as session:
        buf = session.compress(text_20k)
        assert session.decompress(buf.data).data == text_20k


def test_session_rejects_fault_injection_on_foreign_backend():
    with pytest.raises(ConfigError, match="fault injection"):
        NxGzip(Z15, fault_probability=0.5, backend="dfltcc")


# -- SessionStats regression (faults/fallbacks on every path) ----------------

def test_session_stats_count_faults_and_fallbacks(text_20k):
    with NxGzip(POWER9, fault_probability=1.0, seed=7) as session:
        session.compress(text_20k)
        assert session.stats.fallbacks == 1
        assert session.stats.faults > 0

        session.compress_842(text_20k)
        assert session.stats.fallbacks == 2

        stream = session.compress_stream(fmt="raw")
        stream.write(text_20k[:8192])
        stream.finish(text_20k[8192:16384])
        assert session.stats.fallbacks == 4
        assert session.stats.requests == 4
        assert session.stats.modelled_seconds > 0.0


def test_session_stats_clean_run_counts_nothing(text_20k):
    with NxGzip(POWER9) as session:
        buf = session.compress(text_20k)
        session.decompress(buf.data)
        assert session.stats.requests == 2
        assert session.stats.faults == 0
        assert session.stats.fallbacks == 0
