"""Generators, corpora, traces: determinism and statistical targets."""

import random

import pytest

from repro.workloads.corpus import build_corpus, corpus_bytes, corpus_names
from repro.workloads.generators import (
    GENERATORS,
    generate,
    shannon_entropy_bits_per_byte,
)
from repro.workloads.traces import (
    bimodal_size,
    fixed_size,
    lognormal_size,
    poisson_gaps,
    standard_traces,
)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_exact_size(self, name):
        assert len(generate(name, 10000, seed=1)) == 10000

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic(self, name):
        assert generate(name, 5000, seed=9) == generate(name, 5000, seed=9)

    def test_seed_changes_output(self):
        assert generate("markov_text", 5000, seed=1) != generate(
            "markov_text", 5000, seed=2)

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError):
            generate("quantum_noise", 100)

    def test_entropy_ordering(self):
        rand = shannon_entropy_bits_per_byte(
            generate("random_bytes", 20000, seed=1))
        text = shannon_entropy_bits_per_byte(
            generate("markov_text", 20000, seed=1))
        dna = shannon_entropy_bits_per_byte(
            generate("dna_sequence", 20000, seed=1))
        zero = shannon_entropy_bits_per_byte(
            generate("zero_bytes", 20000, seed=1))
        assert rand > 7.9
        assert 3.0 < text < 5.5
        assert dna == pytest.approx(2.0, abs=0.05)
        assert zero == 0.0

    def test_compressibility_ordering(self):
        """Ratios under our codec reflect the intended redundancy range."""
        from repro.deflate.compress import deflate

        ratios = {
            name: deflate(generate(name, 30000, seed=4), level=6).ratio
            for name in ("random_bytes", "markov_text", "database_pages",
                         "log_lines")
        }
        assert ratios["random_bytes"] < 1.05
        assert ratios["markov_text"] > 2.0
        assert ratios["log_lines"] > 3.0
        assert ratios["database_pages"] > 4.0

    def test_entropy_of_empty(self):
        assert shannon_entropy_bits_per_byte(b"") == 0.0


class TestCorpus:
    def test_names(self):
        assert "silesia-like" in corpus_names()
        assert "calgary-like" in corpus_names()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_corpus("enwik8")

    def test_components_built(self):
        corpus = build_corpus("quick")
        assert set(corpus) == {"text", "json", "random"}
        assert all(len(v) > 0 for v in corpus.values())

    def test_scale(self):
        full = build_corpus("quick", scale=1.0)
        half = build_corpus("quick", scale=0.5)
        for name in full:
            assert len(half[name]) == pytest.approx(len(full[name]) / 2,
                                                    rel=0.1)

    def test_cached(self):
        assert build_corpus("quick") is build_corpus("quick")

    def test_corpus_bytes_concatenates(self):
        corpus = build_corpus("quick")
        assert len(corpus_bytes("quick")) == sum(
            len(v) for v in corpus.values())


class TestTraces:
    def test_fixed(self):
        rng = random.Random(0)
        assert fixed_size(4096)(rng) == 4096

    def test_lognormal_bounds(self):
        rng = random.Random(0)
        sampler = lognormal_size(65536, sigma=2.0, min_bytes=1024,
                                 max_bytes=1 << 20)
        values = [sampler(rng) for _ in range(1000)]
        assert all(1024 <= v <= 1 << 20 for v in values)

    def test_lognormal_median_near_target(self):
        rng = random.Random(1)
        sampler = lognormal_size(65536, sigma=1.0)
        values = sorted(sampler(rng) for _ in range(4001))
        median = values[len(values) // 2]
        assert 0.7 * 65536 < median < 1.4 * 65536

    def test_bimodal_fractions(self):
        rng = random.Random(2)
        sampler = bimodal_size(100, 1000, small_fraction=0.9)
        values = [sampler(rng) for _ in range(2000)]
        small = sum(1 for v in values if v == 100)
        assert 0.85 < small / len(values) < 0.95

    def test_standard_traces_named(self):
        names = [t.name for t in standard_traces()]
        assert len(names) == len(set(names))
        assert names

    def test_poisson_gaps_deterministic(self):
        assert poisson_gaps(100, 10, seed=3) == poisson_gaps(100, 10, seed=3)
        assert all(g >= 0 for g in poisson_gaps(100, 10, seed=3))


class TestSpark:
    def test_default_profile_speedup_near_23pct(self):
        from repro.workloads.spark import SparkJobModel

        result = SparkJobModel().run()
        assert 1.18 < result.speedup < 1.30
        assert 0.15 < result.codec_share < 0.25

    def test_no_codec_work_no_speedup(self):
        from repro.workloads.spark import SparkJobModel, Stage

        stages = [Stage("cpu-only", 100.0, 0, 0)]
        result = SparkJobModel().run(stages)
        assert result.speedup == pytest.approx(1.0)

    def test_speedup_grows_with_codec_share(self):
        from repro.workloads.spark import SparkJobModel, tpcds_like_profile

        small = SparkJobModel().run(tpcds_like_profile(scale_gb=0.5))
        large = SparkJobModel().run(tpcds_like_profile(scale_gb=3.0))
        assert large.speedup > small.speedup

    def test_z15_at_least_as_fast(self):
        from repro.nx.params import Z15
        from repro.workloads.spark import SparkJobModel

        p9 = SparkJobModel().run()
        z15 = SparkJobModel(machine=Z15).run()
        assert z15.offload_seconds <= p9.offload_seconds * 1.4

    def test_stage_timing_components(self):
        from repro.workloads.spark import SparkJobModel, tpcds_like_profile

        model = SparkJobModel()
        stage = tpcds_like_profile()[3]
        timing = model.stage_timing(stage)
        assert timing.software_seconds > timing.offload_seconds
        assert timing.codec_core_seconds > 0
