"""Flight recorder: bounded ring, throttled dumps, fault-path capture."""

from __future__ import annotations

import json

import pytest

from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sysstack.crb import Op
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace
from repro.workloads.generators import generate


class TestRing:
    def test_record_and_snapshot(self):
        rec = FlightRecorder(capacity=16)
        rec.record("api.compress", nbytes=100)
        rec.record("pool.rescue", kind="retry")
        snap = rec.snapshot()
        assert [r["kind"] for r in snap] == ["api.compress", "pool.rescue"]
        assert snap[0]["nbytes"] == 100
        assert snap[0]["t_s"] > 0
        # A field named "kind" survives under a prefix, not clobbering
        # the record kind (the pool rescue path records one).
        assert snap[1]["f_kind"] == "retry"

    def test_ring_is_bounded_at_capacity(self):
        rec = FlightRecorder(capacity=8)
        for i in range(100):
            rec.record("tick", i=i)
        assert len(rec) == 8
        assert [r["i"] for r in rec.snapshot()] == list(range(92, 100))

    def test_disable_stops_recording(self):
        rec = FlightRecorder(capacity=8)
        rec.disable()
        rec.record("tick")
        assert len(rec) == 0
        rec.enable()
        rec.record("tick")
        assert len(rec) == 1

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT", "0")
        rec = FlightRecorder(capacity=8)
        assert not rec.enabled
        rec.record("tick")
        assert len(rec) == 0


class TestDump:
    def test_dump_writes_ring_and_detail(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record("engine.run", chip=0)
        path = rec.dump("verify_failure", path=tmp_path / "d.json",
                        chip=0, err=ValueError("boom"))
        doc = json.loads(open(path).read())
        assert doc["reason"] == "verify_failure"
        assert doc["capacity"] == 8
        assert [r["kind"] for r in doc["records"]] == ["engine.run"]
        assert doc["detail"]["chip"] == 0
        assert "boom" in doc["detail"]["err"]  # repr'd, stays JSON-able
        assert rec.dumps_written == 1

    def test_auto_dump_throttles_interval_and_cap(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(capacity=8, min_dump_interval_s=3600.0,
                             max_dumps=8)
        assert rec.auto_dump("breaker_open", chip=1) is not None
        # Second dump inside the interval is suppressed but still
        # recorded in the ring for a later dump to pick up.
        assert rec.auto_dump("breaker_open", chip=1) is None
        assert rec.dumps_written == 1
        assert rec.dumps_suppressed == 1
        kinds = [r["kind"] for r in rec.snapshot()]
        assert kinds.count("dump.breaker_open") == 2

    def test_auto_dump_per_process_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(capacity=8, min_dump_interval_s=0.0,
                             max_dumps=2)
        written = [rec.auto_dump("fault_x_y", i=i) for i in range(5)]
        assert sum(1 for p in written if p) == 2
        assert rec.dumps_suppressed == 3

    def test_dump_never_raises_on_bad_dir(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        path = rec.dump("x", path=tmp_path / "no" / "such" / "dir.json")
        assert path is None
        assert rec.dumps_suppressed == 1


class TestFaultCapture:
    """A chaos-injected fault dumps the ring with the job's events."""

    def test_corrupt_output_fault_produces_dump(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        FLIGHT.reset()
        FLIGHT.enable()
        try:
            FLIGHT.record("api.compress", nbytes=20000,
                          backend="model:POWER9")
            accel = NxAccelerator(POWER9)
            FaultInjector(
                [FaultPlan("corrupt_output", at_job=1)],
                seed=3).install(accel)
            driver = NxDriver(accel, AddressSpace())
            driver.open()
            driver.run(Op.COMPRESS, generate("markov_text", 20000,
                                             seed=5))
            dumps = sorted(tmp_path.glob("repro-flight-*.json"))
            assert dumps, "fault fired but no flight dump written"
            doc = json.loads(dumps[0].read_text())
            assert doc["reason"] == "fault_corrupt_output"
            kinds = [r["kind"] for r in doc["records"]]
            # The dump holds the job's preceding events and the trigger.
            assert "api.compress" in kinds
            assert "dump.fault_corrupt_output" in kinds
            trigger = [r for r in doc["records"]
                       if r["kind"] == "dump.fault_corrupt_output"]
            assert trigger[0]["chip"] == 0
        finally:
            FLIGHT.reset()

    def test_global_recorder_default_on(self):
        assert isinstance(FLIGHT, FlightRecorder)
        assert FLIGHT.capacity >= 1024


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
