"""CRC-32 / Adler-32 against the stdlib reference and by properties."""

import zlib

from hypothesis import given
from hypothesis import strategies as st

from repro.deflate.checksums import adler32, crc32


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == 0

    def test_known_vector(self):
        # The canonical "123456789" check value for CRC-32/ISO-HDLC.
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_stdlib_on_samples(self, payload_suite):
        for data in payload_suite.values():
            assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=2048))
    def test_matches_stdlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=512), st.binary(max_size=512))
    def test_incremental(self, a, b):
        assert crc32(b, crc32(a)) == crc32(a + b)

    def test_single_bit_change_changes_crc(self):
        data = bytearray(b"hello world payload")
        base = crc32(bytes(data))
        data[3] ^= 0x01
        assert crc32(bytes(data)) != base


class TestAdler32:
    def test_empty_is_one(self):
        assert adler32(b"") == 1

    def test_known_vector(self):
        assert adler32(b"Wikipedia") == 0x11E60398

    @given(st.binary(max_size=2048))
    def test_matches_stdlib(self, data):
        assert adler32(data) == zlib.adler32(data)

    @given(st.binary(max_size=512), st.binary(max_size=512))
    def test_incremental(self, a, b):
        assert adler32(b, adler32(a)) == adler32(a + b)

    def test_long_input_modular_reduction(self):
        # Exceeds the NMAX deferral window, exercising the chunk loop.
        data = b"\xff" * 20000
        assert adler32(data) == zlib.adler32(data)
