"""Trace generation and replay."""

import pytest

from repro.nx.params import POWER9
from repro.workloads.replay import (
    DiurnalSpec,
    TracePoint,
    diurnal_trace,
    replay,
)


@pytest.fixture(scope="module")
def small_spec():
    return DiurnalSpec(duration_s=0.5, base_rate_per_s=5000.0,
                       bulk_rate_per_s=200.0, seed=1)


class TestDiurnalTrace:
    def test_sorted_and_bounded(self, small_spec):
        trace = diurnal_trace(small_spec)
        times = [p.time_s for p in trace]
        assert times == sorted(times)
        assert all(0 <= t <= small_spec.duration_s for t in times)

    def test_deterministic(self, small_spec):
        assert diurnal_trace(small_spec) == diurnal_trace(small_spec)

    def test_bulk_window_present(self, small_spec):
        trace = diurnal_trace(small_spec)
        bulk = [p for p in trace if p.size_bytes == small_spec.bulk_bytes]
        assert bulk
        lo = small_spec.bulk_start_frac * small_spec.duration_s
        hi = small_spec.bulk_end_frac * small_spec.duration_s
        assert all(lo <= p.time_s <= hi for p in bulk)

    def test_sinusoidal_modulation(self, small_spec):
        """First half (rising sine) carries more RPCs than second half."""
        trace = [p for p in diurnal_trace(small_spec)
                 if p.size_bytes == small_spec.request_bytes]
        half = small_spec.duration_s / 2
        first = sum(1 for p in trace if p.time_s < half)
        second = len(trace) - first
        assert first > second


class TestReplay:
    def test_all_requests_served(self, small_spec):
        trace = diurnal_trace(small_spec)
        result = replay(trace, POWER9, engines=1,
                        duration_s=small_spec.duration_s)
        assert result.total_requests == len(trace)

    def test_bucket_counts_sum(self, small_spec):
        trace = diurnal_trace(small_spec)
        result = replay(trace, POWER9, engines=1, buckets=5,
                        duration_s=small_spec.duration_s)
        assert sum(b.count for b in result.buckets) == len(trace)
        assert len(result.buckets) == 5

    def test_more_engines_never_worse(self, small_spec):
        trace = diurnal_trace(small_spec)
        one = replay(trace, POWER9, engines=1,
                     duration_s=small_spec.duration_s)
        four = replay(trace, POWER9, engines=4,
                      duration_s=small_spec.duration_s)
        assert (four.worst_bucket.p99_latency_s
                <= one.worst_bucket.p99_latency_s * 1.001)

    def test_empty_trace(self):
        result = replay([], POWER9, engines=1, duration_s=1.0)
        assert result.total_requests == 0
        assert all(b.count == 0 for b in result.buckets)

    def test_queue_depth_tracked(self, small_spec):
        trace = diurnal_trace(small_spec)
        result = replay(trace, POWER9, engines=1,
                        duration_s=small_spec.duration_s)
        assert result.max_queue_depth >= 1

    def test_single_point(self):
        result = replay([TracePoint(0.1, 65536)], POWER9, duration_s=1.0)
        assert result.total_requests == 1
        latency = result.worst_bucket.p99_latency_s
        assert 5e-6 < latency < 50e-6
