"""Network robustness end to end: frame abuse, resends, reconnects.

The server side of the wire hardening — typed ``bad_frame`` answers
for garbage instead of silent hangups, idle deadlines, request-id
dedup over real sockets — and the headline acceptance scenario: a
reconnecting client whose first attempt's connection is killed
mid-response still completes the request, exactly once, via the
server's idempotency cache.  Ends with a seeded slice of the
``repro chaos --network`` campaign.
"""

from __future__ import annotations

import gzip
import socket
import struct
import threading
import time

import pytest

from repro.errors import RetryBudgetExhausted, ServiceUnreachable
from repro.resilience import NetFaultPlan, fault_factory
from repro.service import (CompressionService, IdempotencyCache,
                           RetryBudget, ServiceClient, serve)
from repro.service.protocol import (ProtocolError, recv_message,
                                    send_message)

_LEN = struct.Struct(">I")


@pytest.fixture()
def stack():
    """A served software-backend service; yields (service, server)."""
    service = CompressionService(chips=1, backend="software")
    server = serve(service, port=0)
    yield service, server
    server.shutdown()
    service.close()


def _dial(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _assert_healthy(server) -> None:
    """The dispatcher still serves fresh connections."""
    with ServiceClient(port=server.port) as client:
        assert client.ping()


class TestFrameAbuse:
    def test_garbage_header_answered_with_bad_frame(self, stack):
        _, server = stack
        sock = _dial(server.port)
        garbage = b"\x00\xffnot json at all"
        sock.sendall(_LEN.pack(len(garbage)) + garbage)
        header, _ = recv_message(sock)
        assert header["status"] == "error"
        assert header["error_type"] == "bad_frame"
        assert header["kind"] == "bad_header"
        assert header["retryable"] is False
        # The connection closes after the typed answer.
        assert sock.recv(1) == b""
        sock.close()
        _assert_healthy(server)

    def test_oversized_header_answered_with_bad_frame(self, stack):
        _, server = stack
        sock = _dial(server.port)
        sock.sendall(_LEN.pack(1 << 30))
        header, _ = recv_message(sock)
        assert header["error_type"] == "bad_frame"
        assert header["kind"] == "oversized_header"
        sock.close()
        _assert_healthy(server)

    def test_oversized_payload_answered_with_bad_frame(self, stack):
        _, server = stack
        sock = _dial(server.port)
        head = b'{"op":"compress"}'
        sock.sendall(_LEN.pack(len(head)) + head + _LEN.pack(1 << 31))
        header, _ = recv_message(sock)
        assert header["error_type"] == "bad_frame"
        assert header["kind"] == "oversized_payload"
        sock.close()
        _assert_healthy(server)

    def test_disconnect_mid_frame_leaves_server_healthy(self, stack):
        _, server = stack
        sock = _dial(server.port)
        # Declare a 64-byte header, deliver 3 bytes, vanish.
        sock.sendall(_LEN.pack(64) + b"abc")
        sock.close()
        _assert_healthy(server)

    def test_non_object_header_rejected(self, stack):
        _, server = stack
        sock = _dial(server.port)
        head = b'[1,2,3]'
        sock.sendall(_LEN.pack(len(head)) + head)
        header, _ = recv_message(sock)
        assert header["error_type"] == "bad_frame"
        assert header["kind"] == "bad_header"
        sock.close()
        _assert_healthy(server)


class TestIdleTimeout:
    def test_silent_connection_is_closed(self):
        service = CompressionService(chips=1, backend="software")
        server = serve(service, port=0, idle_timeout_s=0.2)
        try:
            sock = _dial(server.port)
            # Say nothing; the server hangs up at the idle deadline.
            deadline = time.monotonic() + 5.0
            closed = False
            while time.monotonic() < deadline:
                try:
                    if sock.recv(1) == b"":
                        closed = True
                        break
                except TimeoutError:
                    break
            assert closed
            sock.close()
            _assert_healthy(server)
        finally:
            server.shutdown()
            service.close()


class TestDedupOnTheWire:
    def test_resend_replays_cached_result(self, stack, text_20k):
        _, server = stack
        sock = _dial(server.port)
        header = {"op": "compress", "fmt": "gzip", "tenant": "acme",
                  "request_id": "req-42"}
        send_message(sock, header, text_20k)
        first, body_first = recv_message(sock)
        assert first["status"] == "ok"
        assert first["request_id"] == "req-42"
        assert "deduped" not in first
        # Same idempotency key again: replay, not re-execution.
        send_message(sock, header, text_20k)
        second, body_second = recv_message(sock)
        assert second["deduped"] is True
        assert body_second == body_first
        assert gzip.decompress(body_second) == text_20k
        sock.close()
        stats = server.dedup.stats()
        assert stats == {**stats, "hits": 1, "stores": 1,
                         "duplicate_stores": 0}

    def test_requests_without_id_never_dedup(self, stack, text_20k):
        service, server = stack
        sock = _dial(server.port)
        for _ in range(2):
            send_message(sock, {"op": "compress", "fmt": "gzip"},
                         text_20k)
            header, _ = recv_message(sock)
            assert header["status"] == "ok"
        sock.close()
        assert server.dedup.stats()["stores"] == 0
        assert service.stats().completed == 2

    def test_failed_execution_does_not_poison_the_key(self, stack):
        _, server = stack
        sock = _dial(server.port)
        header = {"op": "decompress", "fmt": "gzip",
                  "request_id": "req-bad"}
        send_message(sock, header, b"this is not gzip")
        first, _ = recv_message(sock)
        assert first["status"] == "error"
        # The key was aborted, not cached: a retry executes again
        # (and fails again) rather than replaying the error.
        send_message(sock, header, b"this is not gzip")
        second, _ = recv_message(sock)
        assert second["status"] == "error"
        assert "deduped" not in second
        sock.close()
        assert server.dedup.stats()["stores"] == 0


class TestReconnectingClient:
    def test_first_response_killed_midframe_still_completes(self,
                                                            text_20k):
        """The acceptance scenario: kill attempt one's response."""
        service = CompressionService(chips=1, backend="software")
        # Exactly the first connection truncates its first response
        # mid-frame; every reconnect gets a clean socket.
        wrapper = fault_factory(
            [NetFaultPlan("truncate", at_op=1, magnitude=5.0)],
            seed=11, max_connections=1)
        server = serve(service, port=0, socket_wrapper=wrapper)
        try:
            with ServiceClient(port=server.port, reconnect=True) as client:
                out = client.request("compress", text_20k, fmt="gzip")
            assert gzip.decompress(out.output) == text_20k
            assert out.reconnects >= 1
            assert out.deduped is True  # replay, not re-execution
            assert service.stats().completed == 1
            stats = server.dedup.stats()
            assert stats["stores"] == 1
            assert stats["duplicate_stores"] == 0
        finally:
            server.shutdown()
            service.close()

    def test_duplicated_responses_are_filtered(self, stack, text_20k):
        service, server = stack
        # The client's view: every server response frame is doubled;
        # the request_id echo lets it drop the strays.
        wrapper = fault_factory(
            [NetFaultPlan("duplicate", probability=1.0)], seed=5)
        server.socket_wrapper = wrapper
        try:
            with ServiceClient(port=server.port) as client:
                for _ in range(3):
                    out = client.request("compress", text_20k, fmt="gzip")
                    assert gzip.decompress(out.output) == text_20k
            assert service.stats().completed == 3
        finally:
            server.socket_wrapper = None

    def test_reconnect_off_surfaces_the_failure(self, text_20k):
        service = CompressionService(chips=1, backend="software")
        wrapper = fault_factory(
            [NetFaultPlan("truncate", at_op=1)], seed=11,
            max_connections=1)
        server = serve(service, port=0, socket_wrapper=wrapper)
        try:
            with ServiceClient(port=server.port) as client, \
                    pytest.raises((ProtocolError, OSError)):
                client.request("compress", text_20k, fmt="gzip")
        finally:
            server.shutdown()
            service.close()

    def test_retry_budget_exhaustion_stops_the_hammering(self, text_20k):
        service = CompressionService(chips=1, backend="software")
        # Every connection resets on its first operation — the wire is
        # simply dead, and the budget decides when to stop dialling.
        wrapper = fault_factory([NetFaultPlan("reset", at_op=1)], seed=2)
        server = serve(service, port=0, socket_wrapper=wrapper)
        budget = RetryBudget(capacity=4.0, deposit=0.0, initial=2.0)
        try:
            with ServiceClient(port=server.port, reconnect=True,
                               max_reconnects=50,
                               retry_budget=budget) as client, \
                    pytest.raises(RetryBudgetExhausted):
                client.request("compress", text_20k, fmt="gzip")
            assert budget.denied >= 1
        finally:
            server.shutdown()
            service.close()

    def test_unreachable_is_a_one_line_typed_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServiceUnreachable) as excinfo:
            ServiceClient(port=free_port)
        assert "unreachable" in str(excinfo.value)
        assert "\n" not in str(excinfo.value)
        assert excinfo.value.retryable


class TestDedupRace:
    def test_resend_while_executing_waits_not_reexecutes(self, stack,
                                                         text_20k):
        """Two connections, same request_id, racing: one execution."""
        service, server = stack
        results = []

        def call(delay_s: float) -> None:
            time.sleep(delay_s)
            sock = _dial(server.port)
            send_message(sock, {"op": "compress", "fmt": "gzip",
                                "request_id": "race-1"}, text_20k)
            header, body = recv_message(sock)
            results.append((header, body))
            sock.close()

        threads = [threading.Thread(target=call, args=(d,))
                   for d in (0.0, 0.01)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(results) == 2
        bodies = {body for _, body in results}
        assert len(bodies) == 1
        assert gzip.decompress(bodies.pop()) == text_20k
        assert service.stats().completed == 1
        assert server.dedup.stats()["duplicate_stores"] == 0


class TestNetworkCampaign:
    def test_seeded_scenario_survives(self):
        from repro.resilience.chaos import run_network_scenario

        result = run_network_scenario("net_combined", seed=7, jobs=16,
                                      clients=4)
        assert result.survived
        assert result.wrong_bytes == 0
        assert result.duplicate_stores == 0
        assert result.gave_up == 0
        assert result.executions == result.stores == result.served == 16

    def test_unknown_scenario_rejected(self):
        from repro.errors import ReproError
        from repro.resilience.chaos import run_network_campaign

        with pytest.raises(ReproError):
            run_network_campaign(scenario="net_bogus")
