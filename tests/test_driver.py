"""Driver: submit/poll/retry loop, fault fixup, fallback, accounting."""

import zlib as stdzlib

import pytest

from repro.nx.accelerator import NxAccelerator
from repro.nx.params import POWER9
from repro.sysstack.crb import Op
from repro.sysstack.driver import NxDriver
from repro.sysstack.mmu import AddressSpace, FaultInjector


def make_driver(fault_probability=0.0, seed=0, max_retries=8):
    space = AddressSpace(
        fault_injector=FaultInjector(fault_probability, seed=seed))
    accel = NxAccelerator(POWER9)
    driver = NxDriver(accel, space, max_retries=max_retries)
    driver.open()
    return driver


class TestHappyPath:
    def test_compress(self, text_20k):
        driver = make_driver()
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k
        assert result.stats.submissions == 1
        assert not result.stats.fallback_to_software

    def test_decompress(self, text_20k):
        driver = make_driver()
        comp = driver.run(Op.COMPRESS, text_20k)
        decomp = driver.run(Op.DECOMPRESS, comp.output)
        assert decomp.output == text_20k

    def test_gzip_format_via_driver(self, json_20k):
        import gzip as stdgzip

        driver = make_driver()
        result = driver.run(Op.COMPRESS, json_20k, fmt="gzip")
        assert stdgzip.decompress(result.output) == json_20k

    def test_elapsed_includes_overheads(self, text_20k):
        driver = make_driver()
        result = driver.run(Op.COMPRESS, text_20k)
        machine = POWER9
        floor = (machine.submit_overhead_us + machine.dispatch_overhead_us
                 + machine.completion_overhead_us) * 1e-6
        assert result.stats.elapsed_seconds > floor


class TestFaultRetry:
    def test_faults_retried_to_success(self, text_20k):
        driver = make_driver(fault_probability=0.02, seed=3)
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k
        assert result.stats.submissions >= 1

    def test_fault_costs_time(self, text_20k):
        clean = make_driver().run(Op.COMPRESS, text_20k)
        # seed chosen so at least one fault fires on this run
        for seed in range(20):
            faulty_driver = make_driver(fault_probability=0.05, seed=seed)
            faulty = faulty_driver.run(Op.COMPRESS, text_20k)
            if faulty.stats.translation_faults:
                assert (faulty.stats.elapsed_seconds
                        > clean.stats.elapsed_seconds)
                return
        pytest.fail("no fault fired across seeds")

    def test_fallback_after_retry_budget(self, text_20k):
        driver = make_driver(fault_probability=1.0, max_retries=2)
        result = driver.run(Op.COMPRESS, text_20k)
        assert result.stats.fallback_to_software
        assert result.csb is None
        # Software fallback output is still a valid raw deflate stream.
        assert stdzlib.decompress(result.output, -15) == text_20k

    def test_fallback_decompress(self, text_20k):
        clean = make_driver()
        comp = clean.run(Op.COMPRESS, text_20k)
        driver = make_driver(fault_probability=1.0, max_retries=1)
        result = driver.run(Op.DECOMPRESS, comp.output)
        assert result.stats.fallback_to_software
        assert result.output == text_20k


class TestTargetGrowth:
    def test_incompressible_grows_target(self, random_8k):
        driver = make_driver()
        # Force a too-small first target by compressing incompressible
        # data: output ~= input * 1.0006 > input, first target is 1.2x
        # so this normally fits; shrink via a tiny target factor instead.
        source, target, csb_va = driver.prepare_buffers(random_8k,
                                                        target_factor=1.2)
        assert target.length >= len(random_8k)

    def test_overflow_retry_succeeds(self, random_8k, monkeypatch):
        driver = make_driver()
        original = driver.prepare_buffers

        def tiny_target(data, target_factor=1.2):
            source, _target, csb_va = original(data, target_factor)
            from repro.sysstack.dde import Dde

            small = Dde.direct(driver.space.alloc(256), 256)
            return source, small, csb_va

        monkeypatch.setattr(driver, "prepare_buffers", tiny_target)
        result = driver.run(Op.COMPRESS, random_8k)
        assert result.stats.target_overflows >= 1
        assert stdzlib.decompress(result.output, -15) == random_8k


class TestWindowLifecycle:
    def test_close_releases_window(self, text_20k):
        driver = make_driver()
        driver.run(Op.COMPRESS, text_20k)
        driver.close()
        assert driver._window_id is None

    def test_run_reopens_after_close(self, text_20k):
        driver = make_driver()
        driver.close()
        result = driver.run(Op.COMPRESS, text_20k)
        assert stdzlib.decompress(result.output, -15) == text_20k
