"""DHT strategies: generation cost, canned library, classification."""

import pytest

from repro.deflate.constants import NUM_DIST_SYMBOLS, NUM_LITLEN_SYMBOLS
from repro.deflate.huffman import kraft_sum
from repro.nx.dht import (
    DhtStrategy,
    canned_dht,
    canned_names,
    dynamic_generation_cycles,
    fixed_dht,
    generate_dynamic,
    select_canned,
)
from repro.nx.params import POWER9, Z15
from repro.workloads.generators import generate


class TestFixedDht:
    def test_zero_cost(self):
        assert fixed_dht().generation_cycles == 0

    def test_covers_all_symbols(self):
        dht = fixed_dht()
        assert all(length > 0 for length in dht.litlen_lengths)
        assert all(length > 0 for length in dht.dist_lengths)


class TestDynamicDht:
    def _freqs(self):
        lit = [0] * NUM_LITLEN_SYMBOLS
        for byte in b"the quick brown fox":
            lit[byte] += 10
        lit[256] = 1
        lit[260] = 5
        dist = [0] * NUM_DIST_SYMBOLS
        dist[3] = 5
        dist[10] = 2
        return lit, dist

    def test_generation_produces_decodable_codes(self):
        lit, dist = self._freqs()
        dht = generate_dynamic(lit, dist, POWER9.engine)
        assert kraft_sum(dht.litlen_lengths) == pytest.approx(1.0)
        assert kraft_sum(dht.dist_lengths) == pytest.approx(1.0)

    def test_cost_scales_with_used_symbols(self):
        lit, dist = self._freqs()
        small = dynamic_generation_cycles(lit, dist, POWER9.engine)
        lit2 = list(lit)
        for sym in range(64):
            lit2[sym] += 1
        large = dynamic_generation_cycles(lit2, dist, POWER9.engine)
        assert large > small

    def test_z15_generator_is_faster(self):
        lit, dist = self._freqs()
        assert (dynamic_generation_cycles(lit, dist, Z15.engine)
                < dynamic_generation_cycles(lit, dist, POWER9.engine))

    def test_source_tag(self):
        lit, dist = self._freqs()
        assert generate_dynamic(lit, dist, POWER9.engine).source == "dynamic"


class TestCannedDht:
    def test_names_stable(self):
        assert canned_names() == ["binary", "flat", "structured", "text"]

    @pytest.mark.parametrize("name", canned_names())
    def test_covers_every_legal_symbol(self, name):
        dht = canned_dht(name)
        # All literals, EOB and length codes must be encodable.
        assert all(length > 0 for length in dht.litlen_lengths[:286])
        # Reserved symbols must NOT be in the header.
        assert dht.litlen_lengths[286] == 0
        assert dht.litlen_lengths[287] == 0
        assert all(length > 0 for length in dht.dist_lengths)

    @pytest.mark.parametrize("name", canned_names())
    def test_codes_complete(self, name):
        dht = canned_dht(name)
        used = [length for length in dht.litlen_lengths if length]
        assert kraft_sum(used) == pytest.approx(1.0)

    def test_lookup_cost_small(self):
        assert canned_dht("text").generation_cycles < 100

    def test_cached(self):
        assert canned_dht("text") is canned_dht("text")


class TestSelectCanned:
    def test_text_classified(self):
        sample = generate("markov_text", 4096, seed=5)
        assert select_canned(sample) == "text"

    def test_random_classified_flat(self):
        sample = generate("random_bytes", 4096, seed=5)
        assert select_canned(sample) == "flat"

    def test_binary_classified(self):
        sample = generate("binary_executable", 4096, seed=5)
        assert select_canned(sample) == "binary"

    def test_structured_classified(self):
        sample = generate("json_records", 4096, seed=5)
        assert select_canned(sample) in ("structured", "text")

    def test_empty_defaults_to_text(self):
        assert select_canned(b"") in canned_names()


class TestStrategyEnum:
    def test_values(self):
        assert DhtStrategy("fixed") is DhtStrategy.FIXED
        assert DhtStrategy("auto") is DhtStrategy.AUTO
