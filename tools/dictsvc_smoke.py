"""CI smoke test for the dictionary service.

Runs the whole dictionary lifecycle the way an operator would: train a
registry on the seeded cloud-like corpus, save and reload the bundle,
push the tables into the engine's canned library, then serve traffic
through a cache-mounted :class:`CompressionService` and check the
things the layer promises — trained tables advertised via backend
capabilities, hit-path bytes identical to miss-path bytes, exact cache
counter reconciliation, and epoch invalidation after a re-push.
Functional coverage lives in ``tests/test_dictsvc.py``; this script is
the end-to-end "does the trained-dictionary path actually serve" bit
for CI.

Usage::

    PYTHONPATH=src python tools/dictsvc_smoke.py
"""

from __future__ import annotations

import gzip
import tempfile
import threading
import zlib
from pathlib import Path

from repro.backend import backend_capabilities
from repro.dictsvc import DictionaryRegistry
from repro.nx.compressor import NxCompressor
from repro.nx.dht import DhtStrategy, clear_trained_dhts, select_canned
from repro.nx.params import POWER9
from repro.service import CompressionService
from repro.workloads.corpus import build_corpus

TRAIN_SEED = 7
SAMPLE_BYTES = 4096


def main() -> int:
    failures: list[str] = []
    clear_trained_dhts()
    corpus = build_corpus("cloud-like", scale=0.25)

    # Part 1: train, bundle round-trip, push.
    registry = DictionaryRegistry(seed=TRAIN_SEED)
    for family, data in corpus.items():
        for offset in range(0, len(data), SAMPLE_BYTES):
            registry.observe(family, data[offset:offset + SAMPLE_BYTES])
    for family in corpus:
        registry.train(family)
    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "dicts.json"
        registry.save_bundle(bundle)
        loaded = DictionaryRegistry(seed=TRAIN_SEED)
        loaded.load_bundle(bundle)
    if [d.name for d in loaded.trained()] \
            != [d.name for d in registry.trained()]:
        failures.append("bundle round-trip changed the dictionary set")
    loaded.push()
    trained = {d.name for d in loaded.trained()}
    print(f"trained and pushed {len(trained)} dictionaries")

    # Part 2: the backend advertises the pushed tables.
    caps = backend_capabilities("nx", machine="POWER9")
    missing = trained - set(caps.canned_dicts)
    if missing:
        failures.append(f"capabilities missing pushed tables: {missing}")

    # Part 3: trained tables actually classify and interop.
    engine = NxCompressor(POWER9.engine)
    picked_trained = 0
    for family, data in corpus.items():
        buf = data[:SAMPLE_BYTES]
        pick = select_canned(buf)
        if pick in trained:
            picked_trained += 1
        result = engine.compress(buf, strategy=DhtStrategy.CANNED)
        if zlib.decompress(result.data, wbits=-15) != buf:
            failures.append(f"canned stream for {family} not zlib-valid")
    if not picked_trained:
        failures.append("no corpus family classified onto a trained table")
    print(f"{picked_trained}/{len(corpus)} families pick trained tables")

    # Part 4: cache-mounted service storm — exact reconciliation and
    # byte parity between the miss path and the hit path.
    payloads = [corpus[family][:SAMPLE_BYTES] for family in corpus]
    outputs: dict[int, set[bytes]] = {i: set() for i in range(len(payloads))}
    lock = threading.Lock()
    with CompressionService(machine="POWER9", chips=1,
                            cache_mb=16) as service:
        def client() -> None:
            for i, payload in enumerate(payloads):
                blob = service.submit(
                    "compress", payload, fmt="gzip",
                    tenant="smoke").wait(timeout_s=30).output
                with lock:
                    outputs[i].add(blob)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.stats()
        cache = stats.cache or {}

    for i, blobs in outputs.items():
        if len(blobs) != 1:
            failures.append(f"payload {i}: divergent cached bytes")
        elif gzip.decompress(next(iter(blobs))) != payloads[i]:
            failures.append(f"payload {i}: wrong bytes")
    expected = 6 * len(payloads)
    if cache.get("requests") != expected:
        failures.append(f"cache requests {cache.get('requests')} "
                        f"!= {expected}")
    if cache.get("executions") != len(payloads):
        failures.append(f"executions {cache.get('executions')} "
                        f"!= unique payloads {len(payloads)}")
    if cache.get("hits", 0) + cache.get("misses", 0) \
            != cache.get("requests", -1):
        failures.append(f"hits+misses != requests: {cache}")
    print(f"storm reconciled: {cache.get('requests')} requests, "
          f"{cache.get('executions')} executions, "
          f"{cache.get('hits')} hits")

    # Part 5: re-training bumps the epoch and retires old names.  The
    # bundle carries trained artifacts, not raw samples, so feed the
    # reloaded registry fresh traffic first.
    before = {d.name for d in loaded.trained()}
    for family, data in corpus.items():
        for offset in range(0, len(data), SAMPLE_BYTES):
            loaded.observe(family, data[offset:offset + SAMPLE_BYTES])
    for family in corpus:
        loaded.train(family)
    loaded.push()
    after = {d.name for d in loaded.trained()}
    if before & after:
        failures.append("re-push kept stale epoch names live")
    clear_trained_dhts()

    if failures:
        print("dictsvc smoke FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("dictsvc smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
