"""CI smoke test for the observability layer.

Runs a traced parallel-deflate round-trip, exports the Chrome trace,
and asserts the trace parses and contains the expected span taxonomy.
The telemetry-overhead ceiling itself is enforced separately by
``tools/perf_gate.py --obs-only``.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import tempfile

from repro import obs
from repro.backend import AcceleratorPool
from repro.deflate.inflate import inflate
from repro.deflate.parallel import parallel_deflate
from repro.nx.params import POWER9
from repro.workloads.generators import generate


def main() -> int:
    corpus = generate("markov_text", 262144, seed=21)

    obs.enable()
    result = parallel_deflate(corpus, level=6, workers=2)
    if inflate(result.data) != corpus:
        print("obs smoke FAILED: parallel-deflate round-trip mismatch")
        return 1

    # One pooled job so the backend/pool metric families populate too.
    with AcceleratorPool(POWER9, chips=1) as pool:
        pooled = pool.compress(corpus[:20000])
        if pool.decompress(pooled.output).output != corpus[:20000]:
            print("obs smoke FAILED: pooled round-trip mismatch")
            return 1

    with tempfile.NamedTemporaryFile(suffix=".trace.json",
                                     delete=False) as handle:
        trace_path = handle.name
    obs.export_chrome_trace(trace_path)
    doc = json.loads(open(trace_path).read())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("obs smoke FAILED: trace has no events")
        return 1
    names = {e["name"] for e in events if e.get("ph") == "X"}
    expected = {"deflate.parallel", "pool.route", "backend.submit",
                "vas.paste", "engine.run", "csb.complete"}
    if not expected <= names:
        print(f"obs smoke FAILED: missing spans {expected - names}")
        return 1

    snapshot = obs.registry().to_prometheus()
    obs.disable()
    obs.reset()

    spans = len(events)
    metric_lines = len(snapshot.splitlines())
    print(f"obs smoke passed: {len(corpus)} bytes round-tripped, "
          f"{spans} trace events, {metric_lines} metric lines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
