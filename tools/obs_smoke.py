"""CI smoke test for the observability layer.

Phase 1 runs a traced parallel-deflate round-trip in-process, exports
the Chrome trace, and asserts the trace parses and contains the
expected span taxonomy.  Phase 2 starts a real ``repro serve`` child
process with the HTTP ops plane, scrapes ``/healthz`` and ``/metrics``,
submits a traced job through :class:`~repro.service.ServiceClient`, and
asserts the exported trace tree on ``/traces/recent`` nests
client → service → pool → worker spans under the client's wire trace
id.  The telemetry-overhead ceiling itself is enforced separately by
``tools/perf_gate.py --obs-only``.

Usage::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request

from repro import obs
from repro.backend import AcceleratorPool
from repro.deflate.inflate import inflate
from repro.deflate.parallel import parallel_deflate
from repro.nx.params import POWER9
from repro.service import ServiceClient
from repro.workloads.generators import generate

#: Spans the served trace tree must contain, per the propagation chain
#: service.request → service.batch → pool.route → worker.job → kernel.
SERVED_SPANS = {"service.request", "service.batch", "pool.route",
                "worker.job", "backend.submit"}


def _tree_names(node: dict, out: set | None = None) -> set:
    out = out if out is not None else set()
    out.add(node["name"])
    for child in node.get("children", ()):
        _tree_names(child, out)
    return out


def _http_get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read()


def serve_smoke() -> int:
    """Phase 2: live server + ops plane + cross-process trace."""
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--http-port", "0", "--backend", "software",
         "--exec-workers", "2", "--duration-s", "60"],
        stdout=subprocess.PIPE, text=True, env=env)
    try:
        ports: dict[str, int] = {}
        for line in proc.stdout:
            match = re.search(r"serving on [\d.]+:(\d+)", line)
            if match:
                ports["tcp"] = int(match.group(1))
            match = re.search(r"ops on http://[\d.]+:(\d+)", line)
            if match:
                ports["http"] = int(match.group(1))
                break
        if set(ports) != {"tcp", "http"}:
            print("obs smoke FAILED: server did not announce its ports")
            return 1
        base = f"http://127.0.0.1:{ports['http']}"

        health = json.loads(_http_get(base + "/healthz"))
        if health.get("status") != "ok":
            print(f"obs smoke FAILED: /healthz says {health}")
            return 1

        payload = generate("markov_text", 65536, seed=23)
        with ServiceClient(port=ports["tcp"]) as client:
            result = client.compress(payload, fmt="raw")
        if inflate(result.output) != payload:
            print("obs smoke FAILED: served round-trip mismatch")
            return 1
        wire_trace = result.traceparent.split("-")[1]

        metrics = _http_get(base + "/metrics").decode()
        if "repro_service_requests_total" not in metrics:
            print("obs smoke FAILED: /metrics missing service counters")
            return 1

        doc = json.loads(_http_get(base + "/traces/recent"))
        match_trees = [tree for tree in doc.get("traces", ())
                       if tree.get("trace_id") == wire_trace]
        if not match_trees:
            print(f"obs smoke FAILED: no exported trace with wire id "
                  f"{wire_trace}")
            return 1
        names: set = set()
        for root in match_trees[0]["roots"]:
            _tree_names(root, names)
        if not SERVED_SPANS <= names:
            print(f"obs smoke FAILED: served trace missing spans "
                  f"{SERVED_SPANS - names} (have {sorted(names)})")
            return 1
        print(f"serve smoke passed: trace {wire_trace[:12]}… nests "
              f"{sorted(SERVED_SPANS)}")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()


def main() -> int:
    corpus = generate("markov_text", 262144, seed=21)

    obs.enable()
    result = parallel_deflate(corpus, level=6, workers=2)
    if inflate(result.data) != corpus:
        print("obs smoke FAILED: parallel-deflate round-trip mismatch")
        return 1

    # One pooled job so the backend/pool metric families populate too.
    with AcceleratorPool(POWER9, chips=1) as pool:
        pooled = pool.compress(corpus[:20000])
        if pool.decompress(pooled.output).output != corpus[:20000]:
            print("obs smoke FAILED: pooled round-trip mismatch")
            return 1

    with tempfile.NamedTemporaryFile(suffix=".trace.json",
                                     delete=False) as handle:
        trace_path = handle.name
    obs.export_chrome_trace(trace_path)
    doc = json.loads(open(trace_path).read())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("obs smoke FAILED: trace has no events")
        return 1
    names = {e["name"] for e in events if e.get("ph") == "X"}
    expected = {"deflate.parallel", "pool.route", "backend.submit",
                "vas.paste", "engine.run", "csb.complete"}
    if not expected <= names:
        print(f"obs smoke FAILED: missing spans {expected - names}")
        return 1

    snapshot = obs.registry().to_prometheus()
    obs.disable()
    obs.reset()

    spans = len(events)
    metric_lines = len(snapshot.splitlines())
    print(f"obs smoke passed: {len(corpus)} bytes round-tripped, "
          f"{spans} trace events, {metric_lines} metric lines")
    return serve_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
