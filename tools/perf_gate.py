"""Performance regression gate for the hot-path kernels.

Usage::

    PYTHONPATH=src python tools/perf_gate.py --tolerance 0.5 [--quick]

Runs ``benchmarks/bench_hotpath.py`` in-process and compares every
scalar throughput metric against the committed ``BENCH_hotpath.json``
baseline.  A metric fails the gate when::

    fresh < (1 - tolerance) * committed

The default tolerance is generous (0.5, i.e. "no worse than half the
committed rate") because shared CI machines are noisy and ``--quick``
measures a quarter-scale corpus; the gate exists to catch order-of-
magnitude kernel regressions — an accidental fallback to a slow path,
a per-byte loop reappearing — not single-digit drift.

``--fresh FILE`` skips the in-process run and gates a previously
recorded report instead (useful to separate measurement from judgment
in CI pipelines).

The gate also bounds the telemetry layer: a fresh
``benchmarks/bench_obs_overhead.py`` run must show the disabled-tracer
guard costing under ``--max-obs-overhead`` percent (default 2.0, the
documented ceiling) on the deflate/inflate hot paths.  ``--skip-obs``
omits that half; ``--obs-only`` runs nothing else.

A third section holds the serving stack to a floor: a fresh
``benchmarks/bench_e20_service_load.py`` run is gated against the
committed ``BENCH_service.json`` with the same relative-floor rule as
the hot paths (saturation throughput and accepted/s must not collapse).
Latency metrics live outside the gated section — lower is better, so
a floor would read improvements as regressions.  ``--skip-service`` /
``--service-only`` / ``--fresh-service FILE`` mirror the obs flags.

A fourth section gates the process execution layer: the warm-pool
parallel-deflate *and* speculative parallel-inflate sweeps from the
hot-path bench must not collapse against the committed per-worker-count
rates, and on a multi-core host each sweep's warm 2-worker rate must
beat its warm 1-worker rate (on a 1-CPU host the speedup check is
skipped — ``meta.cpus`` decides, so a small CI box cannot fake or mask
scaling).  ``--skip-parallel`` / ``--parallel-only`` mirror the other
section flags.

A fifth section gates the dictionary service with absolute checks (the
claims are part of the design, like the obs ceiling): a fresh
``benchmarks/bench_dictsvc.py`` run must show a result-cache hit at
least ``--min-cache-speedup`` (default 10) times cheaper than a miss,
trained canned tables faster than dynamic DHT generation on <=4 KB
buffers, and an aggregate compression-ratio loss no worse than
``--max-ratio-loss`` percent (default 3.0).  ``--skip-dictsvc`` /
``--dictsvc-only`` / ``--fresh-dictsvc FILE`` mirror the other
section flags.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hotpath.json"
OBS_BASELINE_PATH = REPO_ROOT / "BENCH_obs.json"
SERVICE_BASELINE_PATH = REPO_ROOT / "BENCH_service.json"


def gate(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of failure messages; empty means the gate passes."""
    failures: list[str] = []
    committed = baseline.get("results", {})
    measured = fresh.get("results", {})
    for key, base in committed.items():
        if not isinstance(base, (int, float)) or base <= 0:
            continue  # worker-scaling dicts and placeholder zeros
        got = measured.get(key)
        if not isinstance(got, (int, float)):
            failures.append(f"{key}: missing from fresh run")
            continue
        floor = (1.0 - tolerance) * base
        if got < floor:
            failures.append(
                f"{key}: {got:.3f} MB/s < floor {floor:.3f} "
                f"(committed {base:.3f}, tolerance {tolerance:.0%})")
    if not committed:
        failures.append("baseline has no results section")
    return failures


def gate_obs(fresh: dict, max_overhead_pct: float) -> list[str]:
    """Ceiling check on the disabled-telemetry guard cost.

    Unlike the throughput gate this is absolute, not relative to a
    committed baseline: the <2 % promise is part of the observability
    design, so the fresh measurement alone decides.
    """
    failures: list[str] = []
    results = fresh.get("results", {})
    checked = 0
    for key, value in results.items():
        if not key.endswith("_off_overhead_pct"):
            continue
        checked += 1
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: not a number ({value!r})")
        elif value > max_overhead_pct:
            failures.append(
                f"{key}: {value:.3f}% > ceiling {max_overhead_pct:.1f}%")
    if not checked:
        failures.append("obs report has no *_off_overhead_pct metrics")
    return failures


def gate_service(fresh: dict, baseline: dict,
                 tolerance: float) -> list[str]:
    """Relative floor on serving throughput, plus the overload bit.

    Reuses the throughput floor rule; additionally a run that never
    shed anything means the flood failed to saturate the admission
    queues, so the measurement (and the shedding path) proved nothing.
    """
    failures = gate(fresh, baseline, tolerance)
    if not fresh.get("shed", 0) > 0:
        failures.append(
            "service bench shed nothing: flood did not reach the "
            "admission limit, shedding path unexercised")
    return failures


def _gate_sweep(fresh: dict, baseline: dict, key: str,
                tolerance: float) -> list[str]:
    """Floor + scaling sanity on one warm-pool worker sweep.

    Per-worker-count warm rates obey the same relative floor as the
    scalar kernels.  The scaling check (warm 2-worker > warm 1-worker)
    only runs when the *fresh* host has at least two CPUs: a 1-CPU box
    cannot scale however good the pool is, and pretending otherwise
    would either always fail there or force the bar so low it gates
    nothing anywhere.
    """
    failures: list[str] = []
    committed = baseline.get("results", {}).get(key)
    measured = fresh.get("results", {}).get(key)
    if not isinstance(measured, dict) or not measured:
        if isinstance(committed, dict):
            return [f"{key}: missing from fresh run"]
        return []  # neither side has the sweep: nothing to gate
    if isinstance(committed, dict):
        for count, base in committed.items():
            got = measured.get(count)
            if not isinstance(got, (int, float)):
                failures.append(
                    f"{key}[{count}w]: missing from fresh run")
                continue
            floor = (1.0 - tolerance) * base
            if got < floor:
                failures.append(
                    f"{key}[{count}w]: {got:.3f} MB/s "
                    f"< floor {floor:.3f} (committed {base:.3f})")
    cold_key = key.replace("_mbps", "_cold_mbps")
    if not isinstance(fresh.get("results", {}).get(cold_key), dict):
        failures.append(
            f"{cold_key}: missing from fresh run "
            "(cold/warm split not recorded)")
    cpus = fresh.get("meta", {}).get("cpus", 1)
    warm1 = measured.get("1")
    warm2 = measured.get("2")
    if cpus >= 2 and isinstance(warm1, (int, float)) \
            and isinstance(warm2, (int, float)) and warm1 > 0:
        if warm2 <= warm1:
            failures.append(
                f"{key}: warm pool does not scale on {cpus} CPUs: "
                f"2 workers {warm2:.3f} MB/s <= 1 worker "
                f"{warm1:.3f} MB/s")
    return failures


def gate_parallel(fresh: dict, baseline: dict,
                  tolerance: float) -> list[str]:
    """Gate both directions of the execution layer: the chunked
    parallel-deflate sweep and the speculative parallel-inflate sweep.
    The deflate sweep is mandatory; the inflate sweep is gated whenever
    either side recorded it."""
    failures = _gate_sweep(fresh, baseline, "parallel_deflate_mbps",
                           tolerance)
    if not failures and not isinstance(
            fresh.get("results", {}).get("parallel_deflate_mbps"), dict):
        # Mandatory even when the committed baseline predates the sweep.
        failures.append("parallel_deflate_mbps: missing from fresh run")
    failures += _gate_sweep(fresh, baseline, "parallel_inflate_mbps",
                            tolerance)
    return failures


def gate_dictsvc(fresh: dict, min_cache_speedup: float,
                 max_ratio_loss_pct: float) -> list[str]:
    """Absolute checks on the dictionary-service claims.

    Like the obs ceiling, these are design promises rather than
    drift floors: a cache hit must be at least ``min_cache_speedup``
    times cheaper than a miss, canned tables must beat dynamic DHT
    generation on the small-buffer regime they target, and the
    aggregate ratio give-up must stay within ``max_ratio_loss_pct``.
    """
    failures: list[str] = []
    results = fresh.get("results", {})

    speedup = results.get("cache_hit_speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("cache_hit_speedup: missing from dictsvc report")
    elif speedup < min_cache_speedup:
        failures.append(
            f"cache_hit_speedup: {speedup:.1f}x < floor "
            f"{min_cache_speedup:.1f}x (hit {results.get('cache_hit_us')} "
            f"us vs miss {results.get('cache_miss_us')} us)")

    canned = results.get("canned_latency_speedup")
    if not isinstance(canned, (int, float)):
        failures.append(
            "canned_latency_speedup: missing from dictsvc report")
    elif canned <= 1.0:
        failures.append(
            f"canned_latency_speedup: {canned:.3f}x <= 1 — canned DHTs "
            "no longer beat dynamic generation on small buffers")

    loss = results.get("canned_ratio_loss_pct")
    if not isinstance(loss, (int, float)):
        failures.append(
            "canned_ratio_loss_pct: missing from dictsvc report")
    elif loss > max_ratio_loss_pct:
        failures.append(
            f"canned_ratio_loss_pct: {loss:.3f}% > ceiling "
            f"{max_ratio_loss_pct:.1f}%")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown vs the committed "
                             "baseline (default 0.5)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_PATH,
                        help="committed baseline JSON (default repo root)")
    parser.add_argument("--fresh", type=pathlib.Path, default=None,
                        help="gate this report instead of running the bench")
    parser.add_argument("--quick", action="store_true",
                        help="run the bench on the quarter-scale corpus")
    parser.add_argument("--max-obs-overhead", type=float, default=2.0,
                        help="ceiling (percent) on the disabled-telemetry "
                             "guard cost (default 2.0)")
    parser.add_argument("--fresh-obs", type=pathlib.Path, default=None,
                        help="gate this obs report instead of running "
                             "the overhead bench")
    parser.add_argument("--skip-obs", action="store_true",
                        help="skip the telemetry-overhead half")
    parser.add_argument("--obs-only", action="store_true",
                        help="only gate the telemetry overhead")
    parser.add_argument("--service-baseline", type=pathlib.Path,
                        default=SERVICE_BASELINE_PATH,
                        help="committed service baseline JSON "
                             "(default repo root)")
    parser.add_argument("--fresh-service", type=pathlib.Path,
                        default=None,
                        help="gate this service report instead of running "
                             "the load bench")
    parser.add_argument("--skip-service", action="store_true",
                        help="skip the serving-stack section")
    parser.add_argument("--service-only", action="store_true",
                        help="only gate the serving stack")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the execution-layer section")
    parser.add_argument("--parallel-only", action="store_true",
                        help="only gate the execution layer")
    parser.add_argument("--min-cache-speedup", type=float, default=10.0,
                        help="floor on result-cache hit-vs-miss speedup "
                             "(default 10)")
    parser.add_argument("--max-ratio-loss", type=float, default=3.0,
                        help="ceiling (percent) on the canned-DHT "
                             "aggregate ratio loss (default 3.0)")
    parser.add_argument("--fresh-dictsvc", type=pathlib.Path,
                        default=None,
                        help="gate this dictsvc report instead of "
                             "running the dictionary bench")
    parser.add_argument("--skip-dictsvc", action="store_true",
                        help="skip the dictionary-service section")
    parser.add_argument("--dictsvc-only", action="store_true",
                        help="only gate the dictionary service")
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.skip_obs and args.obs_only:
        parser.error("--skip-obs and --obs-only are mutually exclusive")
    if args.skip_service and args.service_only:
        parser.error("--skip-service and --service-only are "
                     "mutually exclusive")
    if args.skip_parallel and args.parallel_only:
        parser.error("--skip-parallel and --parallel-only are "
                     "mutually exclusive")
    if args.skip_dictsvc and args.dictsvc_only:
        parser.error("--skip-dictsvc and --dictsvc-only are "
                     "mutually exclusive")
    exclusive = [flag for flag, on in
                 (("--obs-only", args.obs_only),
                  ("--service-only", args.service_only),
                  ("--parallel-only", args.parallel_only),
                  ("--dictsvc-only", args.dictsvc_only)) if on]
    if len(exclusive) > 1:
        parser.error(" and ".join(exclusive) + " are mutually exclusive")
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

    failures: list[str] = []
    fresh = None
    only_elsewhere = (args.obs_only or args.service_only
                      or args.parallel_only or args.dictsvc_only)
    need_hotpath = (not only_elsewhere
                    or (args.parallel_only and not args.skip_parallel))
    if need_hotpath and args.baseline.exists():
        if args.fresh is not None:
            fresh = json.loads(args.fresh.read_text())
        else:
            from bench_hotpath import run_bench
            fresh = run_bench(quick=args.quick)
    if not only_elsewhere:
        if fresh is None:
            print(f"perf gate: no baseline at {args.baseline}; "
                  "nothing to gate")
        else:
            baseline = json.loads(args.baseline.read_text())
            failures += gate(fresh, baseline, args.tolerance)
            for key, value in fresh.get("results", {}).items():
                base = baseline.get("results", {}).get(key)
                if isinstance(value, (int, float)) \
                        and isinstance(base, (int, float)):
                    print(f"  {key:24s} {value:10.3f} MB/s  "
                          f"(committed {base:.3f})")

    if not args.skip_parallel and not (args.obs_only or args.service_only
                                       or args.dictsvc_only):
        if fresh is None:
            print(f"perf gate: no baseline at {args.baseline}; "
                  "execution layer not gated")
        else:
            baseline = json.loads(args.baseline.read_text())
            failures += gate_parallel(fresh, baseline, args.tolerance)
            cpus = fresh.get("meta", {}).get("cpus", 1)
            for label, key in (("deflate", "parallel_deflate_mbps"),
                               ("inflate", "parallel_inflate_mbps")):
                warm = fresh.get("results", {}).get(key, {})
                cold = fresh.get("results", {}).get(
                    key.replace("_mbps", "_cold_mbps"), {})
                for count in sorted(warm, key=int):
                    print(f"  parallel {label} {count}w: warm "
                          f"{warm[count]:8.3f} MB/s  cold "
                          f"{cold.get(count, 0.0):8.3f} MB/s"
                          + ("" if count == "1" else
                             f"  ({cpus} CPU host)"))

    if not args.skip_obs and not (args.service_only or args.parallel_only
                                  or args.dictsvc_only):
        if args.fresh_obs is not None:
            fresh_obs = json.loads(args.fresh_obs.read_text())
        else:
            from bench_obs_overhead import run_bench as run_obs_bench
            fresh_obs = run_obs_bench(quick=args.quick)
        failures += gate_obs(fresh_obs, args.max_obs_overhead)
        for key, value in fresh_obs.get("results", {}).items():
            if key.endswith("_off_overhead_pct"):
                print(f"  {key:32s} {value:8.3f} %  "
                      f"(ceiling {args.max_obs_overhead:.1f} %)")

    if not args.skip_service and not (args.obs_only or args.parallel_only
                                      or args.dictsvc_only):
        if not args.service_baseline.exists():
            print(f"perf gate: no service baseline at "
                  f"{args.service_baseline}; nothing to gate")
        else:
            service_baseline = json.loads(
                args.service_baseline.read_text())
            if args.fresh_service is not None:
                fresh_service = json.loads(
                    args.fresh_service.read_text())
            else:
                from bench_e20_service_load import (
                    run_bench as run_service_bench,
                )
                fresh_service = run_service_bench(quick=args.quick)
            failures += gate_service(fresh_service, service_baseline,
                                     args.tolerance)
            for key, value in fresh_service.get("results", {}).items():
                base = service_baseline.get("results", {}).get(key)
                if isinstance(value, (int, float)) \
                        and isinstance(base, (int, float)):
                    print(f"  service {key:20s} {value:10.3f}  "
                          f"(committed {base:.3f})")
            print(f"  service shed {fresh_service.get('shed', 0)} of "
                  f"{fresh_service.get('offered', 0)} offered")

    if not args.skip_dictsvc and not (args.obs_only or args.service_only
                                      or args.parallel_only):
        if args.fresh_dictsvc is not None:
            fresh_dictsvc = json.loads(args.fresh_dictsvc.read_text())
        else:
            from bench_dictsvc import run_bench as run_dictsvc_bench
            fresh_dictsvc = run_dictsvc_bench(quick=args.quick)
        failures += gate_dictsvc(fresh_dictsvc, args.min_cache_speedup,
                                 args.max_ratio_loss)
        res = fresh_dictsvc.get("results", {})
        for key in ("cache_hit_speedup", "canned_latency_speedup",
                    "canned_ratio_loss_pct"):
            value = res.get(key)
            if isinstance(value, (int, float)):
                unit = "%" if key.endswith("_pct") else "x"
                print(f"  dictsvc {key:26s} {value:10.3f}{unit}")

    if failures:
        print("perf gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%}, "
          f"obs ceiling {args.max_obs_overhead:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
