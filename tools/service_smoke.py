"""CI smoke test for the compression-as-a-service layer.

Starts a :class:`CompressionServer` on an ephemeral port, drives
concurrent round trips across every default QoS class through the wire
protocol, exercises a structured rejection against a tiny queue, and
finishes with a clean drain.  Functional coverage lives in
``tests/test_service.py``; this script is the end-to-end "does the
server actually serve over a socket" bit for CI.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import gzip
import threading

from repro.errors import ServiceOverloaded
from repro.service import (
    CompressionService,
    QosClass,
    QosPolicy,
    ServiceClient,
    serve,
)
from repro.workloads.generators import generate

CLIENTS = 6
ROUND_TRIPS = 4


def _round_trips(port: int, failures: list[str]) -> None:
    classes = ("interactive", "batch", "bulk")
    try:
        with ServiceClient("127.0.0.1", port) as client:
            if not client.ping():
                failures.append("ping did not return ok")
                return
            for i in range(ROUND_TRIPS):
                qos = classes[i % len(classes)]
                payload = generate("json_records", 4096, seed=100 + i)
                result = client.request("compress", payload, qos=qos)
                if gzip.decompress(result.output) != payload:
                    failures.append(f"wrong bytes for qos={qos}")
                if result.qos != qos:
                    failures.append(
                        f"qos echo mismatch: {result.qos} != {qos}")
                back = client.request("decompress", result.output,
                                      qos=qos)
                if back.output != payload:
                    failures.append(f"decompress mismatch for {qos}")
    except Exception as exc:  # noqa: BLE001 - smoke reports, not raises
        failures.append(f"client crashed: {exc!r}")


def main() -> int:
    # Part 1: concurrent round trips across all default QoS classes.
    with CompressionService(chips=2) as service:
        server = serve(service, port=0)
        try:
            failures: list[str] = []
            threads = [
                threading.Thread(target=_round_trips,
                                 args=(server.port, failures))
                for _ in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if failures:
                print("service smoke FAILED:")
                for failure in failures[:10]:
                    print(f"  {failure}")
                return 1
            stats = service.stats()
            expected = CLIENTS * ROUND_TRIPS * 2  # compress + decompress
            if stats.completed != expected:
                print(f"service smoke FAILED: completed "
                      f"{stats.completed} != {expected}")
                return 1
        finally:
            server.shutdown()

    # Part 2: a tiny queue sheds with a structured, retryable rejection.
    tight = QosPolicy((
        QosClass("interactive", fifo="high", rank=0, queue_limit=1,
                 max_batch=1),
    ))
    payload = generate("json_records", 4096, seed=7)
    with CompressionService(chips=1, qos=tight) as service:
        tickets = []
        shed = 0
        for _ in range(24):
            try:
                tickets.append(service.submit("compress", payload,
                                              qos="interactive"))
            except ServiceOverloaded as exc:
                if not exc.retryable or exc.retry_after_s <= 0:
                    print("service smoke FAILED: rejection not "
                          "retryable with a retry-after hint")
                    return 1
                shed += 1
        for ticket in tickets:
            out = ticket.wait(60)
            if gzip.decompress(out.output) != payload:
                print("service smoke FAILED: wrong bytes post-shed")
                return 1
        if shed == 0:
            print("service smoke FAILED: tiny queue never shed")
            return 1
        # Part 3: clean drain — backlog empty, then closed for business.
        service.drain(timeout_s=30)
        if service.stats().in_service != 0:
            print("service smoke FAILED: drain left work in service")
            return 1

    print(f"service smoke passed: {expected} round trips over the "
          f"wire across {CLIENTS} clients, {shed} retryable "
          "rejections, clean drain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
