"""Record golden DEFLATE streams + stats for kernel parity testing.

Usage:  PYTHONPATH=src python tools/record_goldens.py

Writes ``tests/data/golden_deflate.json``: SHA-256 of the exact bitstream
and every ``MatchStats``/``InflateStats`` field for a grid of payloads,
levels, strategies, and streaming modes.  ``tests/test_golden_parity.py``
pins the current codec against this file, so any kernel rewrite that
changes a single emitted byte (or a single chain probe) fails loudly.

Also writes ``tests/data/golden_dictsvc.json``: fingerprints of every
dictionary the registry trains from the seeded cloud-like corpus (code
lengths and priming bytes — training must be byte-identical run to
run) plus the SHA-256 of canned-DHT bitstreams the engine emits with
those tables pushed.  ``tests/test_golden_parity.py`` replays both.

Only re-run this when an *intentional* bitstream change lands — the whole
point of the file is that rewrites keep it byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import zlib

from repro.deflate.compress import deflate
from repro.deflate.inflate import inflate_with_stats
from repro.workloads.generators import generate

OUT = (pathlib.Path(__file__).resolve().parent.parent
       / "tests" / "data" / "golden_deflate.json")
OUT_DICTSVC = OUT.parent / "golden_dictsvc.json"

#: Training grid for the dictsvc goldens (mirrors `repro dict train`).
DICTSVC_TRAIN = {"corpus": "cloud-like", "scale": 0.25, "seed": 7,
                 "sample_bytes": 4096, "max_clusters": 4}


def payloads() -> dict[str, bytes]:
    return {
        "empty": b"",
        "one": b"x",
        "tiny": b"abcabcabcabc",
        "zeros": bytes(4096),
        "text": generate("markov_text", 20000, seed=11),
        "json": generate("json_records", 20000, seed=12),
        "random": generate("random_bytes", 8192, seed=13),
        "binary": generate("binary_executable", 20000, seed=14),
        "logs": generate("log_lines", 16384, seed=77),
        "dna": generate("dna_sequence", 8192, seed=78),
    }


def cases() -> list[dict]:
    """The (payload, deflate-kwargs) grid the parity suite replays."""
    grid: list[dict] = []
    for name in payloads():
        for level in (1, 4, 6, 9):
            grid.append({"payload": name, "level": level})
    for strategy in ("rle", "huffman_only"):
        grid.append({"payload": "text", "level": 6, "strategy": strategy})
        grid.append({"payload": "zeros", "level": 6, "strategy": strategy})
    # multi-block, streaming continuation, and preset-dictionary paths
    grid.append({"payload": "text", "level": 6, "block_tokens": 256})
    grid.append({"payload": "text", "level": 6, "final": False})
    grid.append({"payload": "json", "level": 6, "history": "text"})
    grid.append({"payload": "text", "level": 0})
    return grid


def record_case(case: dict, data_by_name: dict[str, bytes]) -> dict:
    kwargs = {k: v for k, v in case.items() if k != "payload"}
    if "history" in kwargs:
        kwargs["history"] = data_by_name[kwargs["history"]]
    data = data_by_name[case["payload"]]
    result = deflate(data, **kwargs)
    stats = result.stats
    entry = {
        **case,
        "sha256": hashlib.sha256(result.data).hexdigest(),
        "compressed_len": len(result.data),
        "blocks": result.blocks,
        "stats": {
            "literals": stats.literals,
            "matches": stats.matches,
            "match_bytes": stats.match_bytes,
            "chain_probes": stats.chain_probes,
        },
    }
    history = case.get("history")
    hist_bytes = data_by_name[history] if history else b""
    if case.get("final", True):
        out, istats, bits = inflate_with_stats(result.data,
                                               history=hist_bytes)
        assert out == data, case
        entry["inflate_stats"] = {
            "literals": istats.literals,
            "matches": istats.matches,
            "match_bytes": istats.match_bytes,
            "blocks": istats.blocks,
            "bits_consumed": bits,
        }
    return entry


def train_dictsvc_registry():
    """Train the golden registry (deterministic under DICTSVC_TRAIN)."""
    from repro.dictsvc import DictionaryRegistry
    from repro.workloads.corpus import build_corpus

    cfg = DICTSVC_TRAIN
    corpus = build_corpus(cfg["corpus"], scale=cfg["scale"])
    registry = DictionaryRegistry(seed=cfg["seed"],
                                  sample_bytes=cfg["sample_bytes"],
                                  max_clusters=cfg["max_clusters"])
    for family, data in corpus.items():
        for offset in range(0, len(data), cfg["sample_bytes"]):
            registry.observe(family,
                             data[offset:offset + cfg["sample_bytes"]])
    for family in corpus:
        registry.train(family)
    return registry, corpus


def dictionary_fingerprints(registry) -> list[dict]:
    """Byte-level fingerprints of every trained dictionary."""
    entries = []
    for dictionary in registry.trained():
        entries.append({
            "name": dictionary.name,
            "tenant": dictionary.tenant,
            "samples": dictionary.samples,
            "litlen_sha256": hashlib.sha256(
                bytes(dictionary.litlen_lengths)).hexdigest(),
            "dist_sha256": hashlib.sha256(
                bytes(dictionary.dist_lengths)).hexdigest(),
            "priming_sha256": hashlib.sha256(
                dictionary.priming).hexdigest(),
            "priming_len": len(dictionary.priming),
        })
    return entries


def record_dictsvc() -> dict:
    """Golden canned-DHT bitstreams with the trained tables pushed."""
    from repro.nx.compressor import NxCompressor
    from repro.nx.dht import DhtStrategy, clear_trained_dhts, select_canned
    from repro.nx.params import POWER9

    registry, corpus = train_dictsvc_registry()
    clear_trained_dhts()
    registry.push()
    try:
        engine = NxCompressor(POWER9.engine)
        streams = []
        for family, data in sorted(corpus.items()):
            for offset in (0, 4096):
                buf = data[offset:offset + 4096]
                if len(buf) < 4096:
                    continue
                result = engine.compress(buf, strategy=DhtStrategy.CANNED)
                # zlib interop is part of the golden contract.
                assert zlib.decompress(result.data, wbits=-15) == buf
                streams.append({
                    "tenant": family,
                    "offset": offset,
                    "length": len(buf),
                    "pick": select_canned(buf),
                    "sha256": hashlib.sha256(result.data).hexdigest(),
                    "compressed_len": len(result.data),
                })
    finally:
        clear_trained_dhts()
    return {
        "train": dict(DICTSVC_TRAIN),
        "dictionaries": dictionary_fingerprints(registry),
        "streams": streams,
    }


def main() -> int:
    data_by_name = payloads()
    entries = [record_case(case, data_by_name) for case in cases()]
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(entries, indent=1) + "\n")
    print(f"wrote {OUT} ({len(entries)} cases)")
    golden = record_dictsvc()
    OUT_DICTSVC.write_text(json.dumps(golden, indent=1) + "\n")
    print(f"wrote {OUT_DICTSVC} ({len(golden['dictionaries'])} "
          f"dictionaries, {len(golden['streams'])} streams)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
