#!/usr/bin/env python
"""Lint metric names against the repo's naming convention.

Every metric registered through the observability registry must be
named ``repro_<layer>_<name>`` (lowercase, underscore-separated, at
least three segments), and the suffix rule splits by kind:

* **counters** end in ``_total`` (Prometheus counter convention);
* gauges / histograms / rolling windows must **not** end in ``_total``
  — a non-monotonic series masquerading as a counter breaks every
  ``rate()`` query written against it.

The linter walks the AST of every file under ``src/`` looking for
``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` /
``.window("...")`` calls whose first argument is a string literal or
f-string (f-string placeholders count as one name segment, so
``f"repro_{layer}_requests_total"`` is valid).  Dynamic names that the
AST cannot see are out of scope — keep metric names literal.

Beyond the naming convention, the linter also enforces *presence*: the
dictionary-service and result-cache metric families in
:data:`REQUIRED_NAMES` must be registered somewhere under ``src/`` —
a refactor that silently drops that instrumentation fails the lint,
because dashboards and the property suite key off those exact names.

Exit status: 0 when every name conforms, 1 otherwise (one line per
violation, ``file:line: message``).  Run from anywhere::

    python tools/metrics_lint.py [src_dir]
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

#: Registry constructor methods and whether they make a counter.
_METRIC_METHODS = {
    "counter": True,
    "gauge": False,
    "histogram": False,
    "window": False,
}

#: ``repro_<layer>_<name>``: three or more lowercase segments.
_NAME_RE = re.compile(r"^repro(_[a-z0-9]+){2,}$")

#: Stand-in segment for an f-string placeholder ({layer} etc.).
_PLACEHOLDER = "x"

#: Metric names the source tree must keep registering.  These carry
#: the dictionary-service observability contract: the cache counters
#: back the hits+misses==requests invariant the property suite checks,
#: and the dictsvc series expose training/push activity.
REQUIRED_NAMES = frozenset({
    "repro_cache_requests_total",
    "repro_cache_evictions_total",
    "repro_cache_entries",
    "repro_cache_bytes",
    "repro_dictsvc_samples_total",
    "repro_dictsvc_train_runs_total",
    "repro_dictsvc_clusters",
    "repro_dictsvc_pushed_tables",
})


def _literal_name(node: ast.expr) -> str | None:
    """The metric name a call's first argument spells, if static enough.

    Plain string constants come back verbatim; f-strings come back with
    each ``{...}`` placeholder replaced by a single well-formed segment
    so the surrounding structure is still checked.  Anything else (a
    variable, a concatenation) returns None and is skipped.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(
                    piece.value, str):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                parts.append(_PLACEHOLDER)
            else:
                return None
        return "".join(parts)
    return None


def _check_name(name: str, is_counter: bool) -> str | None:
    """The violation message for ``name``, or None when it conforms."""
    if not _NAME_RE.match(name):
        return (f"metric name {name!r} does not match "
                f"repro_<layer>_<name> (lowercase, >= 3 segments)")
    if is_counter and not name.endswith("_total"):
        return f"counter {name!r} must end in '_total'"
    if not is_counter and name.endswith("_total"):
        return (f"non-counter {name!r} must not end in '_total' "
                f"(reserved for counters)")
    return None


def lint_source(source: str, filename: str = "<string>",
                seen: set[str] | None = None) -> list[str]:
    """All violations in one module's source, as ``file:line: msg``.

    When ``seen`` is given, every statically-visible metric name is
    added to it (for the :data:`REQUIRED_NAMES` presence check).
    """
    violations: list[str] = []
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [f"{filename}:{exc.lineno or 0}: unparsable: {exc.msg}"]
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and node.args):
            continue
        name = _literal_name(node.args[0])
        if name is None:
            continue
        if seen is not None:
            seen.add(name)
        message = _check_name(name,
                              _METRIC_METHODS[node.func.attr])
        if message is not None:
            violations.append(f"{filename}:{node.lineno}: {message}")
    return violations


def lint_tree(root: pathlib.Path) -> list[str]:
    """Lint every ``*.py`` under ``root``; violations sorted by path."""
    violations: list[str] = []
    seen: set[str] = set()
    for path in sorted(root.rglob("*.py")):
        violations.extend(lint_source(path.read_text(),
                                      str(path), seen))
    for name in sorted(REQUIRED_NAMES - seen):
        violations.append(
            f"{root}: required metric {name!r} is not registered "
            "anywhere (dictionary-service observability contract)")
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else (
        pathlib.Path(__file__).resolve().parent.parent / "src")
    if not root.exists():
        print(f"error: no such directory {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for line in violations:
        print(line)
    if violations:
        print(f"metrics lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("metrics lint: all metric names conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
