"""Collect benchmark result tables into one report.

Usage:  python tools/collect_results.py [output.md]

Reads every table under benchmarks/results/ (written by the benches)
and assembles a single markdown report with the experiment index, so a
fresh `pytest benchmarks/ --benchmark-only` run can be published as one
artefact.
"""

from __future__ import annotations

import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" \
    / "results"


def build_report() -> str:
    lines = ["# Benchmark results", "",
             "Regenerate with `pytest benchmarks/ --benchmark-only`.", ""]
    if not RESULTS.is_dir():
        lines.append("*(no results yet — run the benches first)*")
        return "\n".join(lines) + "\n"
    for path in sorted(RESULTS.glob("*.txt")):
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines) + "\n"


def main() -> int:
    report = build_report()
    if len(sys.argv) > 1:
        pathlib.Path(sys.argv[1]).write_text(report)
        print(f"wrote {sys.argv[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
