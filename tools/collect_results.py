"""Collect benchmark result tables into one report.

Usage:  python tools/collect_results.py [output.md]

Reads every table under benchmarks/results/ (written by the benches)
and assembles a single markdown report with the experiment index, so a
fresh `pytest benchmarks/ --benchmark-only` run can be published as one
artefact.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
HOTPATH = REPO_ROOT / "BENCH_hotpath.json"
OBS = REPO_ROOT / "BENCH_obs.json"


def _hotpath_section() -> list[str]:
    """Render BENCH_hotpath.json (the measured kernel rates) as a table."""
    if not HOTPATH.exists():
        return []
    report = json.loads(HOTPATH.read_text())
    meta = report.get("meta", {})
    before = report.get("before", {})
    lines = ["## hotpath kernels (measured wall-clock)", "",
             f"Corpus: {meta.get('corpus', '?')}, "
             f"{meta.get('bytes', '?')} bytes, "
             f"level {meta.get('level', '?')}.  "
             "Regenerate with `python benchmarks/bench_hotpath.py`.", "",
             "| kernel | MB/s | before | speedup |",
             "|---|---|---|---|"]
    for key, value in report.get("results", {}).items():
        if isinstance(value, dict):
            scaled = ", ".join(f"{w}w: {v}" for w, v in value.items())
            lines.append(f"| {key} | {scaled} | — | — |")
            continue
        old = before.get(key)
        if isinstance(old, (int, float)) and old:
            lines.append(f"| {key} | {value} | {old} | "
                         f"{value / old:.2f}x |")
        else:
            lines.append(f"| {key} | {value} | — | — |")
    lines.append("")
    return lines


def _obs_section() -> list[str]:
    """Render BENCH_obs.json (telemetry overhead) as a table."""
    if not OBS.exists():
        return []
    report = json.loads(OBS.read_text())
    meta = report.get("meta", {})
    lines = ["## telemetry overhead (measured wall-clock)", "",
             f"Corpus: {meta.get('corpus', '?')}, "
             f"{meta.get('bytes', '?')} bytes, "
             f"level {meta.get('level', '?')}.  Regenerate with "
             "`python benchmarks/bench_obs_overhead.py`; gated by "
             "`tools/perf_gate.py --max-obs-overhead`.", "",
             "| metric | value |",
             "|---|---|"]
    for key, value in report.get("results", {}).items():
        unit = " %" if key.endswith("_pct") else (
            " MB/s" if key.endswith("_mbps") else "")
        lines.append(f"| {key} | {value}{unit} |")
    lines.append("")
    return lines


def _stages_section(path: pathlib.Path) -> list[str]:
    """Per-stage span breakdown recorded next to one result table."""
    stages = json.loads(path.read_text())
    if not stages:
        return []
    lines = ["Per-stage breakdown (span-timed):", "",
             "| stage | runs | best s | total s |",
             "|---|---|---|---|"]
    for name in sorted(stages):
        agg = stages[name]
        lines.append(f"| {name} | {agg.get('count', '?')} | "
                     f"{agg.get('best_s', '?')} | "
                     f"{agg.get('total_s', '?')} |")
    lines.append("")
    return lines


def build_report() -> str:
    lines = ["# Benchmark results", "",
             "Regenerate with `pytest benchmarks/ --benchmark-only`.", ""]
    lines.extend(_hotpath_section())
    lines.extend(_obs_section())
    if not RESULTS.is_dir():
        lines.append("*(no results yet — run the benches first)*")
        return "\n".join(lines) + "\n"
    rendered_stage_files = set()
    for path in sorted(RESULTS.glob("*.txt")):
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
        stages_path = path.with_suffix(".stages.json")
        if stages_path.exists():
            rendered_stage_files.add(stages_path)
            lines.extend(_stages_section(stages_path))
    for stages_path in sorted(RESULTS.glob("*.stages.json")):
        if stages_path in rendered_stage_files:
            continue
        lines.append(f"## {stages_path.name.removesuffix('.stages.json')}"
                     " (stages)")
        lines.append("")
        lines.extend(_stages_section(stages_path))
    return "\n".join(lines) + "\n"


def main() -> int:
    report = build_report()
    if len(sys.argv) > 1:
        pathlib.Path(sys.argv[1]).write_text(report)
        print(f"wrote {sys.argv[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
