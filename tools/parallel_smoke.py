"""CI smoke test for the process-based execution layer.

Three checks, all host-independent (they hold even on a 1-CPU runner):

* a 2-worker pool-backed ``parallel_deflate`` produces **byte-identical**
  output to the serial path (the pigz-style chunking is deterministic,
  so worker count must never change the stream);
* a warm pool beats a cold one on the same call (the whole point of
  persistent workers is not paying spawn per call — this is true on any
  host, unlike multi-core scaling);
* after shutdown, zero shared-memory segments remain (slab ownership is
  parent-side only; a leak here means an ``/dev/shm`` leak in prod).

Usage::

    PYTHONPATH=src python tools/parallel_smoke.py
"""

from __future__ import annotations

import time


def main() -> int:
    from repro.deflate.inflate import inflate
    from repro.deflate.parallel import parallel_deflate
    from repro.exec import (get_default_pool, live_segments,
                            shutdown_default_pool)
    from repro.workloads.generators import generate

    corpus = generate("markov_text", 262144, seed=33)
    chunk = 16384  # enough chunks that 2 workers genuinely interleave

    serial = parallel_deflate(corpus, level=6, workers=1,
                              chunk_size=chunk).data
    pooled = parallel_deflate(corpus, level=6, workers=2,
                              chunk_size=chunk).data
    if pooled != serial:
        print("parallel smoke FAILED: 2-worker output differs from "
              f"serial ({len(pooled)} vs {len(serial)} bytes)")
        return 1
    if inflate(pooled) != corpus:
        print("parallel smoke FAILED: round-trip mismatch")
        return 1

    # Warm-vs-cold: same call, with and without a pre-started pool.
    shutdown_default_pool()
    t0 = time.perf_counter()
    parallel_deflate(corpus, level=6, workers=2, chunk_size=chunk)
    cold_s = time.perf_counter() - t0
    warm_s = min(
        _timed(lambda: parallel_deflate(corpus, level=6, workers=2,
                                        chunk_size=chunk))
        for _ in range(3))
    if warm_s >= cold_s:
        print(f"parallel smoke FAILED: warm pool ({warm_s:.3f}s) not "
              f"faster than cold ({cold_s:.3f}s); persistent workers "
              "are not being reused")
        return 1

    pool = get_default_pool()
    restarts = pool.worker_restarts
    shutdown_default_pool()
    leaked = live_segments()
    if leaked:
        print(f"parallel smoke FAILED: leaked shm segments {leaked}")
        return 1
    print(f"parallel smoke passed: {len(corpus)} bytes, "
          f"2-worker output byte-identical to serial "
          f"({len(serial)} bytes); cold {cold_s * 1e3:.1f} ms, "
          f"warm {warm_s * 1e3:.1f} ms "
          f"({cold_s / warm_s:.1f}x); {restarts} worker restarts; "
          "0 leaked segments")
    return 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    raise SystemExit(main())
