"""CI smoke test for the process-based execution layer.

Five checks, all host-independent (they hold even on a 1-CPU runner):

* a 2-worker pool-backed ``parallel_deflate`` produces **byte-identical**
  output to the serial path (the pigz-style chunking is deterministic,
  so worker count must never change the stream);
* a 2-worker pool-backed ``parallel_inflate`` on a multi-member gzip
  archive is byte-identical to the serial decode for the same input
  (speculation may win or lose, it must never change bytes);
* a ``read_range`` through the seek index recorded during that decode
  returns golden bytes while *skipping* the uncompressed prefix;
* a warm pool beats a cold one on the same call (the whole point of
  persistent workers is not paying spawn per call — this is true on any
  host, unlike multi-core scaling);
* after shutdown, zero shared-memory segments remain (slab ownership is
  parent-side only; a leak here means an ``/dev/shm`` leak in prod).

Usage::

    PYTHONPATH=src python tools/parallel_smoke.py
"""

from __future__ import annotations

import time


def main() -> int:
    from repro.deflate.inflate import inflate
    from repro.deflate.parallel import parallel_deflate
    from repro.exec import (get_default_pool, live_segments,
                            shutdown_default_pool)
    from repro.workloads.generators import generate

    corpus = generate("markov_text", 262144, seed=33)
    chunk = 16384  # enough chunks that 2 workers genuinely interleave

    serial = parallel_deflate(corpus, level=6, workers=1,
                              chunk_size=chunk).data
    pooled = parallel_deflate(corpus, level=6, workers=2,
                              chunk_size=chunk).data
    if pooled != serial:
        print("parallel smoke FAILED: 2-worker output differs from "
              f"serial ({len(pooled)} vs {len(serial)} bytes)")
        return 1
    if inflate(pooled) != corpus:
        print("parallel smoke FAILED: round-trip mismatch")
        return 1

    # Pooled speculative inflate: byte parity on a multi-member gzip
    # archive, then one indexed random read that skips the prefix.
    from repro.deflate.containers import gzip_compress
    from repro.deflate.parallel_inflate import parallel_inflate, read_range

    second = generate("json_records", 131072, seed=34)
    plain = corpus + second
    archive = gzip_compress(corpus, level=6) + gzip_compress(second,
                                                             level=6)
    serial_inf = parallel_inflate(archive, "gzip", workers=1,
                                  chunk_size=chunk)
    pooled_inf = parallel_inflate(archive, "gzip", workers=2,
                                  chunk_size=chunk, build_index=True,
                                  index_spacing=65536)
    if pooled_inf.data != plain or serial_inf.data != plain:
        print("parallel smoke FAILED: parallel inflate output differs "
              f"from golden ({len(pooled_inf.data)} vs {len(plain)})")
        return 1
    off, length = len(corpus) + 1000, 2048
    rr = read_range(archive, off, length, index=pooled_inf.index)
    if rr.data != plain[off:off + length]:
        print("parallel smoke FAILED: indexed --range read returned "
              "wrong bytes")
        return 1
    if rr.skipped_bytes <= 0:
        print("parallel smoke FAILED: indexed range read decoded the "
              f"whole prefix (skipped {rr.skipped_bytes} bytes)")
        return 1

    # Warm-vs-cold: same call, with and without a pre-started pool.
    shutdown_default_pool()
    t0 = time.perf_counter()
    parallel_deflate(corpus, level=6, workers=2, chunk_size=chunk)
    cold_s = time.perf_counter() - t0
    warm_s = min(
        _timed(lambda: parallel_deflate(corpus, level=6, workers=2,
                                        chunk_size=chunk))
        for _ in range(3))
    if warm_s >= cold_s:
        print(f"parallel smoke FAILED: warm pool ({warm_s:.3f}s) not "
              f"faster than cold ({cold_s:.3f}s); persistent workers "
              "are not being reused")
        return 1

    pool = get_default_pool()
    restarts = pool.worker_restarts
    shutdown_default_pool()
    leaked = live_segments()
    if leaked:
        print(f"parallel smoke FAILED: leaked shm segments {leaked}")
        return 1
    print(f"parallel smoke passed: {len(corpus)} bytes, "
          f"2-worker output byte-identical to serial "
          f"({len(serial)} bytes); inflate parity on "
          f"{len(archive)}-byte 2-member archive "
          f"({pooled_inf.chunks_used} chunks used); range read skipped "
          f"{rr.skipped_bytes} prefix bytes; cold {cold_s * 1e3:.1f} ms, "
          f"warm {warm_s * 1e3:.1f} ms "
          f"({cold_s / warm_s:.1f}x); {restarts} worker restarts; "
          "0 leaked segments")
    return 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    raise SystemExit(main())
